"""Sharded decision serving: N worker processes behind one front end.

One :class:`~repro.service.service.DecisionService` saturates a core at
roughly 20k single solves per second; an origin fleet needs more and,
just as importantly, needs one crashed optimizer to cost one shard, not
the whole tier.  :class:`ShardedDecisionService` provides both:

* **sharding** — ``session_id`` hashes (CRC-32) onto one of N forked
  worker processes, each running a full :class:`DecisionService`; the
  sticky mapping keeps a session's solver state on one worker;
* **shared table** — the tier-1 :class:`~repro.core.lookup.DecisionTable`
  is built once, published to a memory-mapped file
  (:meth:`~repro.core.lookup.DecisionTable.save_mmap`), and mapped
  read-only by every worker, so N shards share one copy of its pages;
* **supervision** — a :class:`~repro.service.supervisor.Supervisor`
  heartbeats every worker and restarts dead ones with bounded backoff;
* **re-homing** — sessions of a dead shard are re-routed to survivors
  (picked by rendezvous over the live set) where their solver state is
  rebuilt from the next observation; a stale answer is never served;
* **failover floor** — when no worker can answer (all dead, send failed,
  response timed out), the front end answers from its local tier-2 BBA
  rule, so the serving contract (in-range rung, bounded latency) holds
  even with zero live shards;
* **graceful drain** — :meth:`close` stops routing new work, collects
  each worker's final health snapshot over a ``stop`` handshake, and
  answers any late request from the floor instead of dropping it.

The wire protocol is deliberately tiny: observations cross the pipe as
flat tuples (the ladder is config, already held by both sides), and the
request carries its send timestamp so pipe transit counts against the
decision deadline (``fork`` guarantees a shared ``CLOCK_MONOTONIC``).
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..abr.base import PlayerObservation
from ..abr.bba import BbaController
from ..abr.resilient import validate_rung
from ..core.lookup import DecisionTable, TablePublisher
from ..core.objective import SodaConfig
from ..prediction.base import ThroughputSample
from ..runner.executor import spawn_worker
from ..sim.video import BitrateLadder
from .admission import RetryBudget
from .degrade import TIER_RULE
from .health import LatencyRing
from .service import Decision, DecisionService
from .supervisor import RestartPolicy, Supervisor

__all__ = [
    "FleetHealth",
    "RolloutReport",
    "ShardDecision",
    "ShardedDecisionService",
    "WorkerSpec",
    "decode_observation",
    "encode_observation",
]


@dataclass(frozen=True)
class ShardDecision(Decision):
    """A :class:`Decision` annotated with how the fleet produced it.

    Attributes:
        shard: the shard slot that answered (``-1`` for a front-end
            failover answer).
        rehomed: the session was served away from its home shard.
        failover: no worker answered; the front end served its local
            tier-2 floor.
    """

    shard: int = -1
    rehomed: bool = False
    failover: bool = False


# ----------------------------------------------------------------------
# wire codec: observations and decisions as flat tuples
# ----------------------------------------------------------------------
def encode_observation(obs: PlayerObservation) -> tuple:
    """Flatten an observation for the pipe (the ladder stays behind)."""
    return (
        obs.wall_time,
        obs.segment_index,
        obs.buffer_level,
        obs.max_buffer,
        obs.previous_quality,
        tuple(
            (s.start, s.duration, s.size, s.throughput) for s in obs.history
        ),
        obs.rebuffer_time,
        obs.playing,
    )


def decode_observation(data: tuple, ladder: BitrateLadder) -> PlayerObservation:
    """Rebuild an observation against the worker's own ladder."""
    (
        wall_time, segment_index, buffer_level, max_buffer,
        previous_quality, history, rebuffer_time, playing,
    ) = data
    return PlayerObservation(
        wall_time=wall_time,
        segment_index=segment_index,
        buffer_level=buffer_level,
        max_buffer=max_buffer,
        previous_quality=previous_quality,
        ladder=ladder,
        history=tuple(ThroughputSample(*s) for s in history),
        rebuffer_time=rebuffer_time,
        playing=playing,
    )


def _encode_decision(d: Decision) -> tuple:
    return (
        d.quality, d.tier, d.deferred, d.solver_error, d.overran,
        d.shed, d.sanitized,
    )


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerSpec:
    """Everything a shard worker needs to build its decision service.

    Inherited through ``fork`` (never pickled), so ``tier0_factory`` may
    be any live callable — the chaos soak injects crashing solvers here.
    ``table_path`` points at the mmap-published decision table; ``None``
    disables tier 1 in the workers.
    """

    ladder: BitrateLadder
    max_buffer: float
    config: Optional[SodaConfig]
    deadline: float
    max_in_flight: int
    max_sessions: int
    table_path: Optional[str]
    tier0_budget: Optional[float] = None
    tier1_budget: Optional[float] = None
    breaker_threshold: int = 5
    breaker_cooldown: float = 1.0
    tier0_factory: Optional[object] = None
    tier0_chunk: int = 16


def _worker_main(conn, spec: WorkerSpec, slot: int, generation: int) -> None:
    """Shard worker body: one DecisionService, one request/response loop."""
    from .breaker import CircuitBreaker  # local: after-fork construction

    table = (
        DecisionTable.load_mmap(spec.table_path)
        if spec.table_path is not None
        else None
    )
    service = DecisionService(
        ladder=spec.ladder,
        max_buffer=spec.max_buffer,
        config=spec.config,
        deadline=spec.deadline,
        max_in_flight=spec.max_in_flight,
        max_sessions=spec.max_sessions,
        table_points=0,
        table=table,
        tier0_budget=spec.tier0_budget,
        tier1_budget=spec.tier1_budget,
        breaker=CircuitBreaker(
            failure_threshold=spec.breaker_threshold,
            cooldown=spec.breaker_cooldown,
        ),
        tier0_factory=spec.tier0_factory,
        tier0_chunk=spec.tier0_chunk,
    )
    ladder = spec.ladder
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            tag = msg[0]
            if tag == "decide":
                _, session_id, data, sent_at = msg
                decision = service.decide(
                    session_id,
                    decode_observation(data, ladder),
                    deadline_at=sent_at + spec.deadline,
                )
                conn.send(("ok", _encode_decision(decision)))
            elif tag == "batch":
                _, items, sent_at = msg
                requests = [
                    (sid, decode_observation(data, ladder))
                    for sid, data in items
                ]
                decisions = service.decide_many(
                    requests, deadline_at=sent_at + spec.deadline
                )
                conn.send(("ok", [_encode_decision(d) for d in decisions]))
            elif tag == "vbatch":
                _, sids, tputs, bufs, prevs, sent_at = msg
                conn.send((
                    "ok",
                    service.decide_columns(
                        sids, tputs, bufs, prevs,
                        deadline_at=sent_at + spec.deadline,
                    ),
                ))
            elif tag == "health":
                conn.send(("health", service.health().to_dict()))
            elif tag == "table":
                # Swap the tier-1 table in place: map the new file, then
                # rebind — the worker keeps serving throughout.  A bad
                # file is answered as an error and the old table stays.
                _, path = msg
                try:
                    new_table = (
                        DecisionTable.load_mmap(path)
                        if path is not None
                        else None
                    )
                    conn.send(("ok", service.set_table(new_table)))
                except Exception as exc:
                    conn.send(("error", f"table swap failed: {exc}"))
            elif tag == "tableprobe":
                _, seed, count = msg
                current = service.table
                if current is None:
                    conn.send(("ok", (0, [])))
                else:
                    conn.send((
                        "ok",
                        (current.version, current.probe_cells(seed, count)),
                    ))
            elif tag == "ping":
                conn.send(("pong", slot, generation))
            elif tag == "stop":
                conn.send(("bye", service.health().to_dict()))
                break
            else:  # unknown request: answer rather than wedge the pipe
                conn.send(("error", f"unknown request {tag!r}"))
    finally:
        conn.close()


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetHealth:
    """One observable moment of the whole shard fleet.

    Attributes:
        shards: configured shard count.
        live_shards: shards currently serviceable.
        ready: the fleet should receive traffic (at least one live
            shard and not draining).
        decisions: answers the front end returned (including failovers).
        failovers: answers served from the front-end floor.
        sessions_rehomed: re-home assignments made after shard deaths.
        worker_restarts: workers respawned by the supervisor.
        worker_deaths: worker deaths observed.
        heartbeat_failures: live-but-unresponsive workers killed.
        latency: end-to-end p50/p95/p99 over the front-end ring, seconds.
        latency_max: worst end-to-end latency observed, seconds.
        latency_samples: lifetime count of front-end latencies.
        deadline: per-decision budget, seconds.
        rollup: per-shard counter snapshots summed across live shards
            (``decisions``, ``evictions``, ``sheds``, tier counts, ...).
        per_shard: each shard's own health dict (``{"live": False}`` for
            a dead slot); each entry carries its slot's ``restarts``
            count and, when live, the ``table_version`` it serves.
        table_versions: per-slot decision-table version (``-1`` for a
            dead or unreachable slot) — a mixed fleet mid-rollout is
            observable here.
        retries_granted: re-route attempts the retry budget allowed.
        retries_denied: re-route attempts the retry budget refused
            (the request fell to the front-end floor instead).
    """

    shards: int
    live_shards: int
    ready: bool
    decisions: int
    failovers: int
    sessions_rehomed: int
    worker_restarts: int
    worker_deaths: int
    heartbeat_failures: int
    latency: Dict[str, float]
    latency_max: float
    latency_samples: int
    deadline: float
    rollup: Dict[str, float]
    per_shard: List[dict]
    table_versions: List[int] = dataclasses.field(default_factory=list)
    retries_granted: int = 0
    retries_denied: int = 0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


@dataclass(frozen=True)
class RolloutReport:
    """The outcome of one :meth:`ShardedDecisionService.rollout`.

    Attributes:
        target_version: version of the candidate table.
        previous_version: version the fleet served before the rollout.
        committed: the candidate was promoted fleet-wide.
        rolled_back: the rollout was reverted (``reason`` says why).
        reason: human-readable verdict ("committed" on success).
        canary_shard: the slot that served the canary.
        waves: shard indices swapped per wave (the canary is wave 0).
        stages: the state machine's visited stages, in order.
        probe_seed / probe_count: the deterministic cell-probe identity,
            so an operator can reproduce the comparison.
        baseline_defer_fraction: defer fraction of the probe against the
            live table before the canary swap.
        canary_defer_fraction: defer fraction of the same probe against
            the candidate on the canary (``-1`` if never measured).
        final_versions: per-slot table version after the rollout settled
            (``-1`` for a dead slot).
    """

    target_version: int
    previous_version: int
    committed: bool
    rolled_back: bool
    reason: str
    canary_shard: int
    waves: List[List[int]]
    stages: List[str]
    probe_seed: int
    probe_count: int
    baseline_defer_fraction: float
    canary_defer_fraction: float
    final_versions: List[int]

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def _defer_fraction(cells: Sequence[int]) -> float:
    """Fraction of probed cells that are defer (``-1``) — the canary
    comparison's floor-rate proxy (an all-defer table probes as 1.0)."""
    if not cells:
        return -1.0
    return sum(1 for c in cells if c < 0) / len(cells)


def _stat_window(
    before: Optional[dict], after: Optional[dict]
) -> Optional[Dict[str, float]]:
    """Windowed per-shard rates between two health snapshots; ``None``
    when the shard was dead at either end or served nothing between."""
    if not before or not after:
        return None
    if not before.get("live") or not after.get("live"):
        return None
    b, a = before.get("stats", {}), after.get("stats", {})
    decisions = a.get("decisions", 0) - b.get("decisions", 0)
    if decisions <= 0:
        return None
    return {
        "decisions": float(decisions),
        "floor_rate": (
            a.get("tier2_decisions", 0) - b.get("tier2_decisions", 0)
        ) / decisions,
        "error_rate": (
            a.get("solver_errors", 0) - b.get("solver_errors", 0)
        ) / decisions,
    }


def _roll_up(per_shard: Sequence[dict]) -> Dict[str, float]:
    """Sum each live shard's counters into one fleet-level dict."""
    rollup: Dict[str, float] = {}
    for snapshot in per_shard:
        if not snapshot.get("live"):
            continue
        stats = snapshot.get("stats", {})
        for key, value in stats.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                rollup[key] = rollup.get(key, 0) + value
        for key in ("evictions", "sheds"):
            value = snapshot.get(key, 0)
            rollup[key] = rollup.get(key, 0) + value
        batching = snapshot.get("batching", {})
        for key, value in batching.items():
            # Per-shard means/costs do not sum; rebuild them below from
            # the raw counters.  max_batch rolls up as a fleet max.
            if key in ("mean_occupancy", "amortized_ms"):
                continue
            name = f"batching_{key}"
            if key == "max_batch":
                rollup[name] = max(rollup.get(name, 0), value)
            else:
                rollup[name] = rollup.get(name, 0) + value
    batches = rollup.get("batching_batches", 0)
    batched = rollup.get("batching_batched_decisions", 0)
    if batched:
        rollup["batching_mean_occupancy"] = batched / batches
        rollup["batching_amortized_ms"] = (
            1000.0 * rollup.get("batching_batch_time_total", 0.0) / batched
        )
    return rollup


# ----------------------------------------------------------------------
class ShardedDecisionService:
    """Front end hashing sessions onto N supervised shard workers.

    Args:
        ladder: the encoding ladder all sessions share.
        max_buffer: client buffer capacity, seconds.
        config: SODA tuning forwarded to every worker.
        shards: worker process count.
        deadline: per-decision wall-clock budget, seconds (anchored at
            the front-end send time, so pipe transit counts).
        max_in_flight: per-worker admission bound.
        max_sessions: per-worker resident-session cap.
        table_points: grid size for the shared decision table; ``0``
            disables tier 1 fleet-wide.
        table_path: pre-published table file to map instead of building
            one (validated up front; see
            :meth:`~repro.core.lookup.DecisionTable.load_mmap`).
        tier0_budget / tier1_budget: ladder budgets forwarded to workers.
        tier0_factory: per-session solver hook forwarded to workers
            (inherited via fork — the chaos soak injects faults here).
        tier0_chunk: sessions per batched tier-0 solver call inside each
            worker's batch paths (``1`` disables cross-session batching).
        request_slack: extra seconds past the deadline the front end
            waits for a worker's answer before declaring it wedged.
        heartbeat_interval / restart_policy: supervision tuning.
        max_rehomes: bound on the sticky re-home map (oldest evicted).
        retry_ratio / retry_burst: the re-route retry budget — long-run
            retries per request and the burst floor (see
            :class:`~repro.service.admission.RetryBudget`); a dead shard
            re-homes as a bounded trickle, never a retry storm.

    Raises:
        ValueError: on a non-positive shard count.
        RuntimeError: when the platform has no ``fork`` start method.
    """

    def __init__(
        self,
        ladder: BitrateLadder,
        max_buffer: float,
        config: Optional[SodaConfig] = None,
        shards: int = 2,
        deadline: float = 0.05,
        max_in_flight: int = 64,
        max_sessions: int = 1024,
        table_points: int = 32,
        table_path: Optional[str] = None,
        tier0_budget: Optional[float] = None,
        tier1_budget: Optional[float] = None,
        tier0_factory: Optional[object] = None,
        tier0_chunk: int = 16,
        request_slack: float = 0.25,
        heartbeat_interval: float = 0.1,
        restart_policy: Optional[RestartPolicy] = None,
        max_rehomes: int = 4096,
        retry_ratio: float = 0.1,
        retry_burst: float = 10.0,
        clock=None,
    ) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        self.ladder = ladder
        self.max_buffer = max_buffer
        # Same default the per-process service uses: the fast backend
        # (table build and worker solvers must agree on the policy).
        self.config = config = config or SodaConfig(solver_backend="fast")
        self.shards = shards
        self.deadline = deadline
        self.request_slack = request_slack
        self.clock = clock or time.monotonic

        # ---- publish the shared decision table ------------------------
        self._owns_table = False
        if table_path is None and table_points:
            built = DecisionTable(
                ladder,
                max_buffer,
                config=config,
                throughput_points=table_points,
                buffer_points=table_points,
            )
            fd, table_path = tempfile.mkstemp(
                prefix="soda-table-", suffix=".sodatbl"
            )
            os.close(fd)
            built.save_mmap(table_path)
            self._owns_table = True
        if table_path is not None:
            # Validate the file now: a corrupt table should fail loudly
            # at startup, not as N identical worker crash loops.
            DecisionTable.load_mmap(table_path)
        self.table_path = table_path

        self._spec = WorkerSpec(
            ladder=ladder,
            max_buffer=max_buffer,
            config=config,
            deadline=deadline,
            max_in_flight=max_in_flight,
            max_sessions=max_sessions,
            table_path=table_path,
            tier0_budget=tier0_budget,
            tier1_budget=tier1_budget,
            tier0_factory=tier0_factory,
            tier0_chunk=tier0_chunk,
        )

        self._rule = BbaController()  # front-end failover floor
        self.latencies = LatencyRing()
        self._counter_lock = threading.Lock()
        self._decisions = 0
        self._failovers = 0
        self._route_lock = threading.Lock()
        self._rehomes: "OrderedDict[str, int]" = OrderedDict()
        self._rehomed_total = 0
        self._max_rehomes = max_rehomes
        self.retry_budget = RetryBudget(ratio=retry_ratio, burst=retry_burst)
        self._rollout_lock = threading.Lock()
        self._closing = False
        self._closed = False
        self._final_health: Optional[FleetHealth] = None

        self.supervisor = Supervisor(
            shards,
            spawn=self._spawn,
            heartbeat_interval=heartbeat_interval,
            policy=restart_policy,
            clock=self.clock,
        )
        try:
            self.supervisor.start()
        except Exception:
            self._cleanup_table()
            raise

    # ------------------------------------------------------------------
    def _spawn(self, slot: int, generation: int):
        spawned = spawn_worker(
            _worker_main, (self._spec, slot, generation), duplex=True
        )
        if spawned is None:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "sharded serving requires the fork start method"
            )
        return spawned

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def home_shard(self, session_id: str) -> int:
        """The shard a session hashes to when every slot is live."""
        return zlib.crc32(session_id.encode()) % self.shards

    def _route(self, session_id: str) -> Tuple[Optional[int], bool]:
        """Pick the slot to serve a session; re-home off dead shards.

        Returns ``(slot_index, rehomed)``; ``(None, False)`` when no
        shard is live.  Re-homes are sticky: once a session moves to a
        survivor its solver state lives there, so it stays until that
        survivor itself dies.
        """
        home = self.home_shard(session_id)
        with self._route_lock:
            override = self._rehomes.get(session_id)
            if override is not None:
                if self.supervisor.is_alive(override):
                    self._rehomes.move_to_end(session_id)
                    return override, True
                del self._rehomes[session_id]
            if self.supervisor.is_alive(home):
                return home, False
            live = self.supervisor.live_indices()
            if not live:
                return None, False
            target = live[zlib.crc32(session_id.encode()) % len(live)]
            self._rehomes[session_id] = target
            self._rehomed_total += 1
            while len(self._rehomes) > self._max_rehomes:
                self._rehomes.popitem(last=False)
            return target, True

    def rehomed_sessions(self) -> Dict[str, int]:
        """Copy of the current session → survivor-shard overrides."""
        with self._route_lock:
            return dict(self._rehomes)

    @property
    def sessions_rehomed(self) -> int:
        with self._route_lock:
            return self._rehomed_total

    @property
    def failovers(self) -> int:
        with self._counter_lock:
            return self._failovers

    @property
    def decisions(self) -> int:
        with self._counter_lock:
            return self._decisions

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def decide(self, session_id: str, obs: PlayerObservation) -> ShardDecision:
        """Answer one request through the session's (live) shard.

        Never raises: worker death, a broken pipe, or a response timeout
        all collapse to the front-end floor answer with ``failover=True``
        (and the worker reported dead so re-homing kicks in).
        """
        started = self.clock()
        rehomed = False
        if not self._closing:
            self.retry_budget.record_request()
            payload = ("decide", session_id, encode_observation(obs), started)
            # Two routing attempts: a request that catches a shard dying
            # is re-routed once — by then the slot is marked dead, so the
            # second _route re-homes onto a survivor immediately instead
            # of burning the request on the floor.  The second attempt
            # spends a retry token: when a dead shard pushes the retry
            # rate past the budget, the overflow falls to the floor
            # instead of doubling the load on the survivors.
            for attempt in range(2):
                slot_index, rehomed = self._route(session_id)
                if slot_index is None:
                    break
                data = self._request(slot_index, payload, started)
                if data is not None:
                    return self._from_wire(
                        session_id, data, slot_index, rehomed, started
                    )
                if attempt == 0 and not self.retry_budget.try_retry():
                    break
        return self._failover(session_id, obs, started, rehomed)

    def _request(
        self, slot_index: int, payload: tuple, started: float
    ) -> Optional[tuple]:
        """One request/response round trip; ``None`` (and the worker
        reported dead) on any failure."""
        slot = self.supervisor.slots[slot_index]
        with slot.lock:
            if not self.supervisor.is_alive(slot_index):
                return None
            conn = slot.conn
            try:
                conn.send(payload)
                remaining = max(
                    0.01,
                    started + self.deadline + self.request_slack
                    - self.clock(),
                )
                if not conn.poll(remaining):
                    raise TimeoutError("shard response timed out")
                _tag, data = conn.recv()
                return data
            except Exception:
                self.supervisor.report_failure(slot_index)
                return None

    def decide_many(
        self,
        requests: Sequence[Tuple[str, PlayerObservation]],
        full_history: bool = False,
    ) -> List[ShardDecision]:
        """Scatter a batch across shards, gather under one deadline.

        Sub-batches are sent to every target shard first and only then
        collected, so shards compute concurrently; a shard that fails
        mid-batch answers its whole sub-batch from the front-end floor.

        By default each request crosses the pipe as its decision-table
        coordinates (last throughput, buffer, previous rung) packed into
        NumPy columns — the vectorized tiers consume nothing else, and
        the wire cost per item drops an order of magnitude, which is
        what sustains 100k+ decisions/sec aggregate on the batch path.
        ``full_history=True`` ships complete observations instead, so
        the tier-0 prefix sees the client's whole download log (per-item
        cost rises accordingly).
        """
        started = self.clock()
        n = len(requests)
        if n == 0:
            return []
        decisions: List[Optional[ShardDecision]] = [None] * n
        if self._closing:
            for i, (sid, obs) in enumerate(requests):
                decisions[i] = self._failover_decision(sid, obs, started, False)
            self._account(n, failovers=n, latency=self.clock() - started)
            return decisions  # type: ignore[return-value]

        groups: Dict[int, List[int]] = {}
        floors: List[int] = []
        rehomed: List[bool] = [False] * n
        for i, (sid, _obs) in enumerate(requests):
            slot_index, moved = self._route(sid)
            rehomed[i] = moved
            if slot_index is None:
                floors.append(i)
            else:
                groups.setdefault(slot_index, []).append(i)

        if not full_history:
            tputs = np.empty(n)
            bufs = np.empty(n)
            prevs = np.empty(n, dtype=np.int64)
            for i, (_sid, obs) in enumerate(requests):
                history = obs.history
                tputs[i] = history[-1].throughput if history else -1.0
                bufs[i] = obs.buffer_level
                prev = obs.previous_quality
                prevs[i] = -1 if prev is None else prev

        order = sorted(groups)
        acquired: List[int] = []
        sent: Dict[int, bool] = {}
        failover_count = 0
        try:
            # scatter: lock slots in index order, push every sub-batch
            for slot_index in order:
                slot = self.supervisor.slots[slot_index]
                slot.lock.acquire()
                acquired.append(slot_index)
                sent[slot_index] = False
                if not self.supervisor.is_alive(slot_index):
                    continue
                indices = groups[slot_index]
                if full_history:
                    request = (
                        "batch",
                        [
                            (requests[i][0], encode_observation(requests[i][1]))
                            for i in indices
                        ],
                        started,
                    )
                else:
                    idx = np.asarray(indices)
                    request = (
                        "vbatch",
                        [requests[i][0] for i in indices],
                        tputs[idx], bufs[idx], prevs[idx],
                        started,
                    )
                try:
                    slot.conn.send(request)
                    sent[slot_index] = True
                except Exception:
                    self.supervisor.report_failure(slot_index)
            # gather: collect replies in the same order
            budget_until = started + self.deadline + self.request_slack
            for slot_index in order:
                indices = groups[slot_index]
                slot = self.supervisor.slots[slot_index]
                payload = None
                if sent[slot_index]:
                    try:
                        remaining = max(0.01, budget_until - self.clock())
                        if not slot.conn.poll(remaining):
                            raise TimeoutError("shard batch timed out")
                        _tag, payload = slot.conn.recv()
                        answered = (
                            len(payload) if full_history else len(payload[0])
                        )
                        if answered != len(indices):
                            raise ValueError("shard answered a short batch")
                    except Exception:
                        self.supervisor.report_failure(slot_index)
                        payload = None
                if payload is None:
                    for i in indices:
                        sid, obs = requests[i]
                        decisions[i] = self._failover_decision(
                            sid, obs, started, rehomed[i]
                        )
                        failover_count += 1
                    continue
                latency = self.clock() - started
                if full_history:
                    for i, wire in zip(indices, payload):
                        decisions[i] = self._wire_decision(
                            requests[i][0], wire, slot_index, rehomed[i],
                            latency,
                        )
                else:
                    rungs, tiers, deferred = payload
                    for j, i in enumerate(indices):
                        decisions[i] = ShardDecision(
                            session_id=requests[i][0],
                            quality=int(rungs[j]),
                            tier=int(tiers[j]),
                            deferred=bool(deferred[j]),
                            latency=latency,
                            shard=slot_index,
                            rehomed=rehomed[i],
                        )
        finally:
            for slot_index in acquired:
                self.supervisor.slots[slot_index].lock.release()

        for i in floors:
            sid, obs = requests[i]
            decisions[i] = self._failover_decision(sid, obs, started, rehomed[i])
            failover_count += 1
        self._account(
            n, failovers=failover_count, latency=self.clock() - started
        )
        return decisions  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _floor_quality(self, obs: PlayerObservation) -> int:
        try:
            answer = self._rule.select_quality(obs)
        except Exception:
            return 0
        rung = validate_rung(answer, obs.ladder.levels)
        return rung if rung is not None else 0

    def _failover_decision(
        self, session_id: str, obs: PlayerObservation, started: float,
        rehomed: bool,
    ) -> ShardDecision:
        return ShardDecision(
            session_id=session_id,
            quality=self._floor_quality(obs),
            tier=TIER_RULE,
            latency=self.clock() - started,
            shard=-1,
            rehomed=rehomed,
            failover=True,
        )

    def _failover(
        self, session_id: str, obs: PlayerObservation, started: float,
        rehomed: bool,
    ) -> ShardDecision:
        decision = self._failover_decision(session_id, obs, started, rehomed)
        self._account(1, failovers=1, latency=decision.latency)
        return decision

    def _wire_decision(
        self, session_id: str, wire: tuple, shard: int, rehomed: bool,
        latency: float,
    ) -> ShardDecision:
        quality, tier, deferred, solver_error, overran, shed, sanitized = wire
        return ShardDecision(
            session_id=session_id,
            quality=quality,
            tier=tier,
            deferred=deferred,
            solver_error=solver_error,
            overran=overran,
            shed=shed,
            sanitized=sanitized,
            latency=latency,
            shard=shard,
            rehomed=rehomed,
            failover=False,
        )

    def _from_wire(
        self, session_id: str, wire: tuple, shard: int, rehomed: bool,
        started: float,
    ) -> ShardDecision:
        latency = self.clock() - started
        decision = self._wire_decision(
            session_id, wire, shard, rehomed, latency
        )
        self._account(1, failovers=0, latency=latency)
        return decision

    def _account(self, count: int, failovers: int, latency: float) -> None:
        with self._counter_lock:
            self._decisions += count
            self._failovers += failovers
        self.latencies.record_many(latency, count)

    # ------------------------------------------------------------------
    # live table rollout
    # ------------------------------------------------------------------
    def table_probe(
        self, slot_index: int, seed: int, count: int
    ) -> Optional[Tuple[int, List[int]]]:
        """One shard's ``(table_version, probed cells)``; ``None`` when
        the shard is dead or unreachable.

        The probe is deterministic (see
        :meth:`~repro.core.lookup.DecisionTable.probe_cells`), so the
        same ``(seed, count)`` against two shards — or the same shard at
        two times — compares cell-for-cell.
        """
        slot = self.supervisor.slots[slot_index]
        with slot.lock:
            if not self.supervisor.is_alive(slot_index):
                return None
            try:
                slot.conn.send(("tableprobe", seed, count))
                if not slot.conn.poll(2.0):
                    raise TimeoutError("table probe timed out")
                tag, payload = slot.conn.recv()
            except Exception:
                self.supervisor.report_failure(slot_index)
                return None
        if tag != "ok":
            return None
        version, cells = payload
        return int(version), list(cells)

    def shard_table_versions(self) -> List[int]:
        """Per-slot table version right now (``-1`` for a dead slot)."""
        versions = []
        for i in range(self.shards):
            probe = self.table_probe(i, 0, 0)
            versions.append(probe[0] if probe is not None else -1)
        return versions

    def _swap_table(self, slot_index: int, path: str) -> Optional[int]:
        """Tell one worker to remap its table; returns the version it
        now serves, or ``None`` on failure (worker reported dead)."""
        slot = self.supervisor.slots[slot_index]
        with slot.lock:
            if not self.supervisor.is_alive(slot_index):
                return None
            try:
                slot.conn.send(("table", path))
                if not slot.conn.poll(2.0):
                    raise TimeoutError("table swap timed out")
                tag, payload = slot.conn.recv()
            except Exception:
                self.supervisor.report_failure(slot_index)
                return None
        if tag != "ok":
            return None
        return int(payload)

    def rollout(
        self,
        table: DecisionTable,
        probation: float = 0.5,
        wave_size: int = 1,
        probe_seed: int = 17,
        probe_count: int = 128,
        floor_rate_margin: float = 0.2,
        error_rate_margin: float = 0.05,
        p99_factor: float = 4.0,
        monitor=None,
    ) -> RolloutReport:
        """Canary a new decision table onto the fleet, or roll it back.

        The state machine: *publish* the candidate beside the live file
        (next monotonic version), swap it onto one *canary* shard via the
        ``table`` control message (no process restart), hold a
        *probation* window under live traffic, then either *advance*
        wave-by-wave and *commit* (promote the candidate over the live
        path and converge every shard onto it) or *rollback* (re-swap
        every touched shard onto the live path, which still holds the old
        bytes, and unpublish the candidate).  Workers that die and
        restart mid-rollout reload ``spec.table_path`` — the live path —
        so both terminal states are naturally convergent; a final
        convergence pass re-swaps any straggler.

        The canary verdict combines a deterministic table probe (defer
        fraction of the same sampled cells, candidate vs live — the
        poisoned-table detector) with windowed floor-rate /
        solver-error-rate deltas against the baseline shards and a p99
        comparison against the deadline.

        Args:
            table: the candidate (its version is assigned here).
            probation: seconds of live traffic the canary must survive.
            wave_size: shards swapped per wave after the canary clears.
            probe_seed / probe_count: deterministic cell-probe identity.
            floor_rate_margin: max allowed canary-minus-baseline rise in
                probe defer fraction or windowed floor rate.
            error_rate_margin: max allowed windowed solver-error-rate
                rise.
            p99_factor: canary p99 must stay under
                ``p99_factor × baseline p99`` once it breaches the
                deadline.
            monitor: optional ``(stage, info) -> None`` callback fired at
                every stage transition (the chaos soak keys its fault
                injection off this).

        Raises:
            RuntimeError: when tier 1 is disabled (no live table file)
                or the service is draining.
        """
        if self.table_path is None:
            raise RuntimeError("rollout requires tier-1 serving (a table)")
        if self._closing:
            raise RuntimeError("cannot roll out a table while draining")
        with self._rollout_lock:
            return self._rollout_locked(
                table, probation, wave_size, probe_seed, probe_count,
                floor_rate_margin, error_rate_margin, p99_factor,
                monitor or (lambda stage, info: None),
            )

    def _rollout_locked(
        self, table, probation, wave_size, probe_seed, probe_count,
        floor_rate_margin, error_rate_margin, p99_factor, notify,
    ) -> RolloutReport:
        publisher = TablePublisher(self.table_path)
        previous_version = publisher.live_version()
        path, version = publisher.publish(table)
        stages: List[str] = []
        waves: List[List[int]] = []
        swapped: List[int] = []
        base_frac = -1.0
        canary_frac = -1.0

        def stage(name: str, **info) -> None:
            stages.append(name)
            notify(name, dict(info, version=version, path=path))

        def report(committed: bool, rolled_back: bool, reason: str,
                   canary: int) -> RolloutReport:
            return RolloutReport(
                target_version=version,
                previous_version=previous_version,
                committed=committed,
                rolled_back=rolled_back,
                reason=reason,
                canary_shard=canary,
                waves=waves,
                stages=stages,
                probe_seed=probe_seed,
                probe_count=probe_count,
                baseline_defer_fraction=base_frac,
                canary_defer_fraction=canary_frac,
                final_versions=self.shard_table_versions(),
            )

        stage("publish")
        live = self.supervisor.live_indices()
        if not live:
            publisher.unpublish(path)
            stage("abort")
            return report(False, False, "no live shards", -1)
        canary = live[0]
        baseline_shards = live[1:]

        # Baselines before anything changes: the live table's probe
        # (against the canary itself, still on the old version) and each
        # shard's counter snapshot to window the probation deltas.
        base_probe = self.table_probe(canary, probe_seed, probe_count)
        base_frac = _defer_fraction(base_probe[1]) if base_probe else -1.0
        base_stats = {i: self._shard_snapshot(i) for i in live}

        if self._swap_table(canary, path) != version:
            self._revert(swapped, publisher, path, previous_version)
            stage("rollback", reason="canary swap failed")
            return report(False, True, "canary swap failed", canary)
        swapped.append(canary)
        waves.append([canary])
        stage("canary", shard=canary)

        stage("probation", shard=canary, seconds=probation)
        deadline = self.clock() + probation
        while self.clock() < deadline and not self._closing:
            time.sleep(min(0.02, probation))

        verdict, canary_frac = self._judge_canary(
            canary, baseline_shards, version, base_frac, base_stats,
            probe_seed, probe_count, floor_rate_margin, error_rate_margin,
            p99_factor,
        )
        if verdict is not None:
            self._revert(swapped, publisher, path, previous_version)
            stage("rollback", reason=verdict)
            return report(False, True, verdict, canary)

        # Advance wave-by-wave over whatever is live now (a shard that
        # died during probation restarts on the old table; the commit
        # convergence pass picks it up).
        remaining = [
            i for i in self.supervisor.live_indices() if i not in swapped
        ]
        step = max(1, wave_size)
        for start in range(0, len(remaining), step):
            wave = remaining[start:start + step]
            for i in wave:
                if self._swap_table(i, path) == version:
                    swapped.append(i)
            waves.append(wave)
            stage("advance", shards=wave)
            for i in wave:
                probe = self.table_probe(i, probe_seed, probe_count)
                if probe is None or probe[0] != version:
                    continue  # died or restarted: convergence handles it
                frac = _defer_fraction(probe[1])
                if base_frac >= 0 and frac - base_frac > floor_rate_margin:
                    why = (
                        f"wave shard {i} floor-rate spike: probe defer "
                        f"fraction {frac:.2f} vs baseline {base_frac:.2f}"
                    )
                    self._revert(swapped, publisher, path, previous_version)
                    stage("rollback", reason=why)
                    return report(False, True, why, canary)

        # Commit: the candidate becomes the live file, every shard is
        # converged onto the live path (also catching workers that
        # restarted mid-rollout), and the side file is retired.
        publisher.promote(path)
        for i in self.supervisor.live_indices():
            self._swap_table(i, self.table_path)
        publisher.unpublish(path)
        stage("commit")
        return report(True, False, "committed", canary)

    def _judge_canary(
        self, canary, baseline_shards, version, base_frac, base_stats,
        probe_seed, probe_count, floor_rate_margin, error_rate_margin,
        p99_factor,
    ) -> Tuple[Optional[str], float]:
        """The probation verdict: ``(reason-to-rollback or None,
        canary probe defer fraction)``."""
        probe = self.table_probe(canary, probe_seed, probe_count)
        if probe is None:
            return "canary unreachable at end of probation", -1.0
        canary_version, cells = probe
        if canary_version != version:
            return (
                f"canary restarted off the candidate (serving "
                f"v{canary_version})",
                -1.0,
            )
        frac = _defer_fraction(cells)
        if base_frac >= 0 and frac - base_frac > floor_rate_margin:
            return (
                f"canary floor-rate spike: probe defer fraction "
                f"{frac:.2f} vs baseline {base_frac:.2f}",
                frac,
            )

        after = {
            i: self._shard_snapshot(i) for i in [canary] + baseline_shards
        }
        canary_window = _stat_window(base_stats.get(canary), after[canary])
        baseline_windows = [
            w for i in baseline_shards
            if (w := _stat_window(base_stats.get(i), after[i])) is not None
        ]
        if canary_window is not None and baseline_windows:
            base_floor = sum(
                w["floor_rate"] for w in baseline_windows
            ) / len(baseline_windows)
            base_error = sum(
                w["error_rate"] for w in baseline_windows
            ) / len(baseline_windows)
            if canary_window["floor_rate"] - base_floor > floor_rate_margin:
                return (
                    f"canary floor rate {canary_window['floor_rate']:.2f} "
                    f"vs baseline {base_floor:.2f}",
                    frac,
                )
            if canary_window["error_rate"] - base_error > error_rate_margin:
                return (
                    f"canary solver-error rate "
                    f"{canary_window['error_rate']:.2f} vs baseline "
                    f"{base_error:.2f}",
                    frac,
                )
        canary_p99 = after[canary].get("latency", {}).get("p99", 0.0)
        base_p99 = max(
            (
                after[i].get("latency", {}).get("p99", 0.0)
                for i in baseline_shards if after[i].get("live")
            ),
            default=0.0,
        )
        if canary_p99 > self.deadline and (
            base_p99 <= 0 or canary_p99 > p99_factor * base_p99
        ):
            return (
                f"canary p99 {canary_p99 * 1e3:.2f} ms breaches the "
                f"deadline ({self.deadline * 1e3:.2f} ms)",
                frac,
            )
        return None, frac

    def _revert(
        self, swapped: List[int], publisher: TablePublisher, path: str,
        previous_version: int,
    ) -> None:
        """Roll every touched shard back onto the live (old) table and
        retire the candidate file; stragglers are converged by version."""
        for i in dict.fromkeys(swapped):
            self._swap_table(i, self.table_path)
        for i in self.supervisor.live_indices():
            probe = self.table_probe(i, 0, 0)
            if probe is not None and probe[0] != previous_version:
                self._swap_table(i, self.table_path)
        publisher.unpublish(path)

    # ------------------------------------------------------------------
    # health and lifecycle
    # ------------------------------------------------------------------
    def worker_pids(self) -> List[Optional[int]]:
        return self.supervisor.worker_pids()

    def live_shards(self) -> List[int]:
        return self.supervisor.live_indices()

    def _shard_snapshot(self, slot_index: int) -> dict:
        """One shard's health dict over the pipe (dead → ``live: False``)."""
        slot = self.supervisor.slots[slot_index]
        restarts = max(0, slot.generation - 1)
        dead = {"live": False, "shard": slot_index, "restarts": restarts}
        if not self.supervisor.is_alive(slot_index):
            return dead
        with slot.lock:
            if not self.supervisor.is_alive(slot_index):
                return dead
            try:
                slot.conn.send(("health",))
                if not slot.conn.poll(1.0):
                    raise TimeoutError("health poll timed out")
                _tag, payload = slot.conn.recv()
            except Exception:
                self.supervisor.report_failure(slot_index)
                return dead
        payload["shard"] = slot_index
        payload["restarts"] = restarts
        return payload

    def health(self) -> FleetHealth:
        """Fleet snapshot: per-shard healths plus the summed rollup."""
        per_shard = [self._shard_snapshot(i) for i in range(self.shards)]
        return self._build_health(per_shard)

    def _build_health(self, per_shard: List[dict]) -> FleetHealth:
        live = sum(1 for s in per_shard if s.get("live"))
        counters = self.supervisor.counters()
        retry = self.retry_budget.snapshot()
        with self._counter_lock:
            decisions = self._decisions
            failovers = self._failovers
        return FleetHealth(
            shards=self.shards,
            live_shards=live,
            ready=live > 0 and not self._closing,
            decisions=decisions,
            failovers=failovers,
            sessions_rehomed=self.sessions_rehomed,
            worker_restarts=counters["worker_restarts"],
            worker_deaths=counters["worker_deaths"],
            heartbeat_failures=counters["heartbeat_failures"],
            latency=self.latencies.percentiles(),
            latency_max=self.latencies.max_seen,
            latency_samples=self.latencies.total_recorded,
            deadline=self.deadline,
            rollup=_roll_up(per_shard),
            per_shard=per_shard,
            table_versions=[
                int(s.get("table_version", -1)) if s.get("live") else -1
                for s in per_shard
            ],
            retries_granted=retry["retries_granted"],
            retries_denied=retry["retries_denied"],
        )

    # ------------------------------------------------------------------
    def close(self) -> FleetHealth:
        """Graceful drain: stop routing, collect finals, stop workers.

        Any request arriving after this starts is answered from the
        front-end floor (tier 2) — never dropped.  Each worker gets a
        ``stop`` handshake and its final health snapshot is folded into
        the returned fleet health; a worker that does not acknowledge in
        time is killed.
        """
        if self._closed:
            assert self._final_health is not None
            return self._final_health
        self._closing = True
        self.supervisor.stop_monitor()
        per_shard: List[dict] = []
        for slot in self.supervisor.slots:
            snapshot = {"live": False, "shard": slot.index}
            with slot.lock:
                if self.supervisor.is_alive(slot.index):
                    try:
                        slot.conn.send(("stop",))
                        if slot.conn.poll(2.0):
                            _tag, payload = slot.conn.recv()
                            payload["shard"] = slot.index
                            snapshot = payload
                    except Exception:
                        pass
            snapshot["restarts"] = max(0, slot.generation - 1)
            per_shard.append(snapshot)
        self.supervisor.kill_all()
        health = self._build_health(per_shard)
        self._cleanup_table()
        self._final_health = health
        self._closed = True
        return health

    def _cleanup_table(self) -> None:
        if self._owns_table and self.table_path is not None:
            publisher = TablePublisher(self.table_path)
            for published_path in publisher.published().values():
                publisher.unpublish(published_path)
            try:
                os.unlink(self.table_path)
            except OSError:
                pass
            self._owns_table = False

    def __enter__(self) -> "ShardedDecisionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
