"""Health surface of the decision service: liveness, readiness, latency.

Operations needs three answers from a long-lived decision service, each
cheap enough to poll every second:

* **live?** — the process is up and the stats lock is responsive;
* **ready?** — the service should receive traffic: the breaker is not
  stuck open and the recent shed rate is below a threshold;
* **how is it doing?** — a :class:`HealthSnapshot` bundling the counter
  snapshot, breaker state, and p50/p95/p99 decision latency from a
  fixed-size ring buffer, serializable to JSON for dashboards and the
  chaos-soak artifact.

The latency ring keeps the last N observations only — a service that ran
for a week should report *current* latency, not its lifetime average.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .breaker import CircuitBreaker
from .degrade import ServiceStats

__all__ = ["BatchCounters", "LatencyRing", "HealthSnapshot", "build_snapshot"]


class BatchCounters:
    """Thread-safe counters for the cross-session batched solve path.

    Tracks how well tier-0 batching is amortizing: how many solver
    batches ran, how many decisions they covered (occupancy), how much
    wall time they cost (amortized per-decision cost), and — when a
    :class:`~repro.service.batcher.MicroBatcher` fronts the service —
    why each collected batch was flushed.
    """

    FLUSH_REASONS = ("window", "deadline", "size", "drain", "manual")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.batches = 0
        self.batched_decisions = 0
        self.batch_time_total = 0.0
        self.max_batch = 0
        self.flushes = {reason: 0 for reason in self.FLUSH_REASONS}

    def record(self, size: int, elapsed: float = 0.0) -> None:
        """Account one batched tier-0 solve covering ``size`` decisions."""
        if size <= 0:
            return
        with self._lock:
            self.batches += 1
            self.batched_decisions += size
            self.batch_time_total += max(0.0, elapsed)
            if size > self.max_batch:
                self.max_batch = size

    def record_flush(self, reason: str) -> None:
        """Count one micro-batch flush by its trigger."""
        with self._lock:
            self.flushes[reason] = self.flushes.get(reason, 0) + 1

    def snapshot(self) -> Dict[str, float]:
        """Counters plus derived occupancy/amortized-cost figures."""
        with self._lock:
            out: Dict[str, float] = {
                "batches": self.batches,
                "batched_decisions": self.batched_decisions,
                "batch_time_total": self.batch_time_total,
                "max_batch": self.max_batch,
                "mean_occupancy": (
                    self.batched_decisions / self.batches
                    if self.batches
                    else 0.0
                ),
                "amortized_ms": (
                    1000.0 * self.batch_time_total / self.batched_decisions
                    if self.batched_decisions
                    else 0.0
                ),
            }
            for reason, count in self.flushes.items():
                out[f"flush_{reason}"] = count
            return out


class LatencyRing:
    """A fixed-capacity ring of recent decision latencies (seconds).

    Args:
        capacity: number of most-recent samples retained.

    Raises:
        ValueError: on a non-positive capacity.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._samples: List[float] = [0.0] * capacity
        self._next = 0
        self._count = 0
        self.total_recorded = 0
        self.max_seen = 0.0

    def record(self, latency: float) -> None:
        """Append one latency observation, evicting the oldest at capacity."""
        with self._lock:
            self._samples[self._next] = latency
            self._next = (self._next + 1) % self.capacity
            if self._count < self.capacity:
                self._count += 1
            self.total_recorded += 1
            if latency > self.max_seen:
                self.max_seen = latency

    def record_many(self, latency: float, count: int) -> None:
        """Record one latency for ``count`` decisions in a single lock trip.

        The batch path answers many decisions at one instant; paying one
        lock acquisition per decision would dominate the batch itself.
        """
        if count <= 0:
            return
        with self._lock:
            for _ in range(min(count, self.capacity)):
                self._samples[self._next] = latency
                self._next = (self._next + 1) % self.capacity
            self._count = min(self.capacity, self._count + count)
            self.total_recorded += count
            if latency > self.max_seen:
                self.max_seen = latency

    def __len__(self) -> int:
        with self._lock:
            return self._count

    def percentiles(
        self, points: Tuple[float, ...] = (0.50, 0.95, 0.99)
    ) -> Dict[str, float]:
        """Nearest-rank percentiles over the retained window.

        Returns ``{"p50": ..., "p95": ..., "p99": ...}`` (keys derived
        from ``points``); all zeros when no sample has been recorded.
        """
        with self._lock:
            window = sorted(self._samples[: self._count])
        result = {}
        for point in points:
            key = f"p{int(round(point * 100))}"
            if not window:
                result[key] = 0.0
                continue
            rank = max(0, min(len(window) - 1, int(point * len(window))))
            result[key] = window[rank]
        return result


@dataclass(frozen=True)
class HealthSnapshot:
    """One observable moment of the service, JSON-serializable.

    Attributes:
        live: the service answered its own stats poll.
        ready: the service should receive traffic (breaker not open,
            shed rate under the readiness threshold).
        breaker_state: ``closed`` / ``open`` / ``half-open``.
        breaker_times_opened: lifetime trips.
        breaker_full_cycles: completed open → half-open → closed cycles.
        stats: the frozen counter snapshot.
        latency: p50/p95/p99 over the recent-latency ring, seconds.
        latency_max: worst latency ever observed, seconds.
        latency_samples: lifetime count of recorded latencies.
        deadline: the configured per-decision budget, seconds.
        evictions: sessions LRU-evicted by the session table — surfaced
            as a top-level counter so a fleet rollup can sum shards
            without digging into ``stats``.
        sheds: requests refused an in-flight slot, likewise top-level.
        table_version: version of the live tier-1 decision table
            (``0`` when tier 1 is disabled) — during a rollout a mixed
            fleet is observable through this field.
        admission: the admission gate's counter snapshot (current limit,
            in-flight, sheds by class; the adaptive gate adds its AIMD
            trajectory counters).
        batching: the cross-session batched-solve counters (batches,
            occupancy, amortized per-decision cost, micro-batch flush
            triggers; see :class:`BatchCounters`).
    """

    live: bool
    ready: bool
    breaker_state: str
    breaker_times_opened: int
    breaker_full_cycles: int
    stats: ServiceStats
    latency: Dict[str, float]
    latency_max: float
    latency_samples: int
    deadline: float
    evictions: int = 0
    sheds: int = 0
    table_version: int = 0
    admission: Dict[str, float] = field(default_factory=dict)
    batching: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """A plain-dict view (stats flattened) suitable for JSON."""
        payload = dataclasses.asdict(self)
        payload["stats"] = dataclasses.asdict(self.stats)
        payload["stats"]["shed_rate"] = self.stats.shed_rate()
        payload["stats"]["degraded_decisions"] = self.stats.degraded_decisions
        return payload

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def build_snapshot(
    stats: ServiceStats,
    breaker: CircuitBreaker,
    ring: LatencyRing,
    deadline: float,
    max_shed_rate: float = 0.5,
    table_version: int = 0,
    admission: Optional[Dict[str, float]] = None,
    batching: Optional[Dict[str, float]] = None,
) -> HealthSnapshot:
    """Assemble a :class:`HealthSnapshot` from the live components.

    Readiness is conservative: an *open* breaker means the optimizer is
    quarantined and quality is degraded, so the instance reports not-ready
    (half-open counts as recovering, hence ready); a shed rate above
    ``max_shed_rate`` means admission control is refusing a majority of
    traffic and the instance needs relief.
    """
    state = breaker.state.value
    ready = state != "open" and stats.shed_rate() <= max_shed_rate
    return HealthSnapshot(
        live=True,
        ready=ready,
        breaker_state=state,
        breaker_times_opened=breaker.times_opened,
        breaker_full_cycles=breaker.full_cycles(),
        stats=stats,
        latency=ring.percentiles(),
        latency_max=ring.max_seen,
        latency_samples=ring.total_recorded,
        deadline=deadline,
        evictions=stats.sessions_evicted,
        sheds=stats.shed,
        table_version=table_version,
        admission=dict(admission) if admission else {},
        batching=dict(batching) if batching else {},
    )
