"""Admission control: bounded concurrency and bounded session memory.

Three resources of a long-lived decision service must be capped or heavy
traffic will eventually exhaust them:

* **in-flight decisions** — :class:`AdmissionGate` hands out a fixed
  number of slots; a request that finds none is *shed*, which means it is
  answered by the tier-2 floor rule (load shedding degrades quality, it
  never errors).  :class:`AdaptiveGate` replaces the fixed limit with an
  AIMD controller driven by measured tail latency against the decision
  deadline, and sheds *new arrivals* before established sessions — a new
  viewer can safely start on the BBA floor, while yanking the solver away
  from a mid-stream session costs visible quality switches;
* **resident sessions** — :class:`SessionTable` keeps per-session solver
  state in an LRU-ordered map with a hard capacity; creating a session
  beyond the cap evicts the least-recently-used *idle* session (one with
  no decision in flight), so memory stays bounded no matter how many
  distinct viewers show up;
* **retries** — :class:`RetryBudget` caps re-route attempts to a small
  fraction of recent traffic (plus a burst floor), so a dead shard turns
  into a trickle of re-homes instead of a retry storm that doubles the
  load on the survivors.

All are plain ``threading`` primitives — the service runs decisions on a
thread pool, and every operation here is O(1) amortized.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Iterator, List, Optional, Tuple, TypeVar

__all__ = [
    "AdaptiveGate",
    "AdmissionGate",
    "RetryBudget",
    "SessionEntry",
    "SessionTable",
]

T = TypeVar("T")


class AdmissionGate:
    """A non-blocking semaphore over in-flight decision slots.

    Args:
        max_in_flight: concurrent decisions allowed before shedding.

    Raises:
        ValueError: on a non-positive slot count.
    """

    def __init__(self, max_in_flight: int) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        self.max_in_flight = max_in_flight
        self._lock = threading.Lock()
        self._in_flight = 0
        self.shed = 0
        self.shed_new = 0
        self.max_in_flight_seen = 0

    def _limit_for(self, established: bool) -> int:
        """The in-flight bound applied to this request's priority class."""
        return self.max_in_flight

    def try_acquire(self, established: bool = True) -> bool:
        """Claim a slot without blocking; ``False`` means shed the request.

        Args:
            established: the request belongs to a session the service
                already holds state for.  New arrivals (``False``) are
                held to a tighter bound under pressure — they can start
                on the tier-2 floor without a visible quality switch.
        """
        with self._lock:
            if self._in_flight >= self._limit_for(established):
                self.shed += 1
                if not established:
                    self.shed_new += 1
                return False
            self._in_flight += 1
            if self._in_flight > self.max_in_flight_seen:
                self.max_in_flight_seen = self._in_flight
            return True

    def release(self) -> None:
        """Return a slot claimed by :meth:`try_acquire`."""
        with self._lock:
            if self._in_flight <= 0:
                raise RuntimeError("release without a matching acquire")
            self._in_flight -= 1

    def observe(self, latency: float) -> None:
        """Feed one served-decision latency back (no-op for the fixed gate)."""

    @property
    def limit(self) -> int:
        """The current in-flight bound for established sessions."""
        return self.max_in_flight

    def snapshot(self) -> dict:
        """Counters for the health surface."""
        with self._lock:
            return {
                "limit": self.max_in_flight,
                "in_flight": self._in_flight,
                "shed": self.shed,
                "shed_new": self.shed_new,
            }

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight


class AdaptiveGate(AdmissionGate):
    """An AIMD concurrency controller over the admission gate.

    The fixed ``max_in_flight`` becomes a *ceiling*; the effective limit
    moves inside ``[min_in_flight, max_in_flight]`` driven by the tail of
    measured decision latencies against the deadline the degradation
    ladder is defending:

    * every ``window`` served decisions, the window's p99 is compared to
      the deadline: at or above ``high_ratio * deadline`` the limit is cut
      **multiplicatively** (fast back-off under queueing collapse), while
      below ``low_ratio * deadline`` it grows **additively** (slow
      recovery, the classic AIMD asymmetry);
    * new arrivals are held to ``new_headroom`` of the current limit, so
      sustained overload sheds sessions that have not started yet before
      it touches sessions mid-stream.

    Args:
        max_in_flight: the concurrency ceiling (the old fixed limit).
        deadline: per-decision budget the p99 is compared against.
        min_in_flight: the floor the multiplicative decrease stops at.
        window: served decisions per AIMD adjustment round.
        increase: additive step per healthy window.
        decrease: multiplicative factor per unhealthy window, in (0, 1).
        high_ratio: fraction of the deadline the window p99 must reach to
            count as unhealthy.
        low_ratio: fraction of the deadline the window p99 must stay
            under to count as healthy (between the two, the limit holds).
        new_headroom: fraction of the current limit available to
            not-yet-established sessions.

    Raises:
        ValueError: on inconsistent bounds or ratios.
    """

    def __init__(
        self,
        max_in_flight: int,
        deadline: float,
        min_in_flight: int = 1,
        window: int = 64,
        increase: float = 1.0,
        decrease: float = 0.5,
        high_ratio: float = 1.0,
        low_ratio: float = 0.5,
        new_headroom: float = 0.75,
    ) -> None:
        super().__init__(max_in_flight)
        if not 1 <= min_in_flight <= max_in_flight:
            raise ValueError("need 1 <= min_in_flight <= max_in_flight")
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        if window < 1:
            raise ValueError("window must be at least 1")
        if increase <= 0 or not 0 < decrease < 1:
            raise ValueError("need increase > 0 and 0 < decrease < 1")
        if not 0 < low_ratio <= high_ratio:
            raise ValueError("need 0 < low_ratio <= high_ratio")
        if not 0 < new_headroom <= 1:
            raise ValueError("need 0 < new_headroom <= 1")
        self.deadline = deadline
        self.min_in_flight = min_in_flight
        self.window = window
        self.increase = increase
        self.decrease = decrease
        self.high_ratio = high_ratio
        self.low_ratio = low_ratio
        self.new_headroom = new_headroom
        self._level = float(max_in_flight)
        self._latencies: List[float] = []
        self.limit_increases = 0
        self.limit_decreases = 0
        self.min_limit_seen = max_in_flight

    def _limit_for(self, established: bool) -> int:
        limit = max(self.min_in_flight, int(self._level))
        if established:
            return limit
        return max(self.min_in_flight, int(self._level * self.new_headroom))

    @property
    def limit(self) -> int:
        with self._lock:
            return max(self.min_in_flight, int(self._level))

    def observe(self, latency: float) -> None:
        """Feed one served-decision latency into the AIMD controller."""
        with self._lock:
            self._latencies.append(latency)
            if len(self._latencies) < self.window:
                return
            samples = sorted(self._latencies)
            self._latencies.clear()
            p99 = samples[min(len(samples) - 1, int(0.99 * len(samples)))]
            if p99 >= self.high_ratio * self.deadline:
                self._level = max(
                    float(self.min_in_flight), self._level * self.decrease
                )
                self.limit_decreases += 1
            elif p99 < self.low_ratio * self.deadline:
                if self._level < self.max_in_flight:
                    self._level = min(
                        float(self.max_in_flight),
                        self._level + self.increase,
                    )
                    self.limit_increases += 1
            limit = max(self.min_in_flight, int(self._level))
            if limit < self.min_limit_seen:
                self.min_limit_seen = limit

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "limit": max(self.min_in_flight, int(self._level)),
                "ceiling": self.max_in_flight,
                "in_flight": self._in_flight,
                "shed": self.shed,
                "shed_new": self.shed_new,
                "limit_increases": self.limit_increases,
                "limit_decreases": self.limit_decreases,
                "min_limit_seen": self.min_limit_seen,
            }


class RetryBudget:
    """A token bucket bounding retries to a fraction of real traffic.

    Every first-attempt request deposits ``ratio`` of a token; every
    retry withdraws a whole one.  The bucket is capped at ``burst`` (and
    starts full), so isolated failures retry instantly while a dead shard
    under sustained load can add at most ``ratio`` extra traffic — the
    difference between a re-home trickle and a retry storm.

    Args:
        ratio: long-run retries allowed per request, e.g. ``0.1``.
        burst: token cap (and initial balance).

    Raises:
        ValueError: on a non-positive ratio or burst.
    """

    def __init__(self, ratio: float = 0.1, burst: float = 10.0) -> None:
        if ratio <= 0 or burst < 1:
            raise ValueError("need ratio > 0 and burst >= 1")
        self.ratio = ratio
        self.burst = burst
        self._lock = threading.Lock()
        self._tokens = float(burst)
        self.retries_granted = 0
        self.retries_denied = 0

    def record_request(self, count: int = 1) -> None:
        """Deposit for ``count`` first-attempt requests."""
        if count <= 0:
            return
        with self._lock:
            self._tokens = min(self.burst, self._tokens + self.ratio * count)

    def try_retry(self) -> bool:
        """Withdraw one retry token; ``False`` means give up now."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.retries_granted += 1
                return True
            self.retries_denied += 1
            return False

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "tokens": self._tokens,
                "retries_granted": self.retries_granted,
                "retries_denied": self.retries_denied,
            }


class SessionEntry:
    """One resident session: caller-owned state plus an in-use latch.

    Attributes:
        session_id: the key this entry is stored under.
        state: opaque per-session state built by the table's factory
            (the service stores its solver + sample bookkeeping here).
        lock: serializes decisions for this session.
        in_use: set while a decision holds the entry, which exempts it
            from LRU eviction.
    """

    __slots__ = ("session_id", "state", "lock", "in_use")

    def __init__(self, session_id: str, state: object) -> None:
        self.session_id = session_id
        self.state = state
        self.lock = threading.Lock()
        self.in_use = False


class SessionTable:
    """An LRU-bounded map of :class:`SessionEntry` objects.

    Args:
        max_sessions: hard cap on resident sessions; creating one more
            evicts the least-recently-used idle entry first.

    Raises:
        ValueError: on a non-positive capacity.
    """

    def __init__(self, max_sessions: int) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        self.max_sessions = max_sessions
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, SessionEntry]" = OrderedDict()
        self.created = 0
        self.evicted = 0
        self.max_size_seen = 0

    # ------------------------------------------------------------------
    def checkout(
        self, session_id: str, factory: Callable[[], T]
    ) -> Tuple[SessionEntry, bool]:
        """Fetch (or create) a session and mark it in use.

        Returns ``(entry, created)``.  The caller must hold
        ``entry.lock`` while touching ``entry.state`` and call
        :meth:`checkin` when the decision completes.  When the table is
        full of busy sessions, the cap still holds: the *new* session is
        created but the oldest idle entry is evicted as soon as one
        exists (eviction is retried on every checkout).
        """
        with self._lock:
            entry = self._entries.get(session_id)
            created = entry is None
            if entry is None:
                entry = SessionEntry(session_id, factory())
                self._entries[session_id] = entry
                self.created += 1
            else:
                self._entries.move_to_end(session_id)
            entry.in_use = True
            self._evict_over_cap()
            size = len(self._entries)
            if size > self.max_size_seen:
                self.max_size_seen = size
            return entry, created

    def checkin(self, entry: SessionEntry) -> None:
        """Release an entry checked out by :meth:`checkout`."""
        with self._lock:
            entry.in_use = False
            self._evict_over_cap()

    def _evict_over_cap(self) -> None:
        """Drop LRU idle entries until the cap holds (lock held)."""
        while len(self._entries) > self.max_sessions:
            victim_id = None
            for session_id, entry in self._entries.items():
                if not entry.in_use:
                    victim_id = session_id
                    break
            if victim_id is None:
                # Every resident session has a decision in flight; the
                # next checkin retries.  max_in_flight bounds the excess.
                return
            del self._entries[victim_id]
            self.evicted += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._entries

    def ids(self) -> Iterator[str]:
        """Resident session ids, LRU first (snapshot)."""
        with self._lock:
            return iter(list(self._entries.keys()))

    def peek(self, session_id: str) -> Optional[SessionEntry]:
        """Fetch an entry without touching LRU order or the latch."""
        with self._lock:
            return self._entries.get(session_id)
