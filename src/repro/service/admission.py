"""Admission control: bounded concurrency and bounded session memory.

Two resources of a long-lived decision service must be capped or heavy
traffic will eventually exhaust them:

* **in-flight decisions** — :class:`AdmissionGate` hands out a fixed
  number of slots; a request that finds none is *shed*, which means it is
  answered by the tier-2 floor rule (load shedding degrades quality, it
  never errors);
* **resident sessions** — :class:`SessionTable` keeps per-session solver
  state in an LRU-ordered map with a hard capacity; creating a session
  beyond the cap evicts the least-recently-used *idle* session (one with
  no decision in flight), so memory stays bounded no matter how many
  distinct viewers show up.

Both are plain ``threading`` primitives — the service runs decisions on a
thread pool, and every operation here is O(1) amortized.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Iterator, Optional, Tuple, TypeVar

__all__ = ["AdmissionGate", "SessionEntry", "SessionTable"]

T = TypeVar("T")


class AdmissionGate:
    """A non-blocking semaphore over in-flight decision slots.

    Args:
        max_in_flight: concurrent decisions allowed before shedding.

    Raises:
        ValueError: on a non-positive slot count.
    """

    def __init__(self, max_in_flight: int) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        self.max_in_flight = max_in_flight
        self._lock = threading.Lock()
        self._in_flight = 0
        self.shed = 0
        self.max_in_flight_seen = 0

    def try_acquire(self) -> bool:
        """Claim a slot without blocking; ``False`` means shed the request."""
        with self._lock:
            if self._in_flight >= self.max_in_flight:
                self.shed += 1
                return False
            self._in_flight += 1
            if self._in_flight > self.max_in_flight_seen:
                self.max_in_flight_seen = self._in_flight
            return True

    def release(self) -> None:
        """Return a slot claimed by :meth:`try_acquire`."""
        with self._lock:
            if self._in_flight <= 0:
                raise RuntimeError("release without a matching acquire")
            self._in_flight -= 1

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight


class SessionEntry:
    """One resident session: caller-owned state plus an in-use latch.

    Attributes:
        session_id: the key this entry is stored under.
        state: opaque per-session state built by the table's factory
            (the service stores its solver + sample bookkeeping here).
        lock: serializes decisions for this session.
        in_use: set while a decision holds the entry, which exempts it
            from LRU eviction.
    """

    __slots__ = ("session_id", "state", "lock", "in_use")

    def __init__(self, session_id: str, state: object) -> None:
        self.session_id = session_id
        self.state = state
        self.lock = threading.Lock()
        self.in_use = False


class SessionTable:
    """An LRU-bounded map of :class:`SessionEntry` objects.

    Args:
        max_sessions: hard cap on resident sessions; creating one more
            evicts the least-recently-used idle entry first.

    Raises:
        ValueError: on a non-positive capacity.
    """

    def __init__(self, max_sessions: int) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        self.max_sessions = max_sessions
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, SessionEntry]" = OrderedDict()
        self.created = 0
        self.evicted = 0
        self.max_size_seen = 0

    # ------------------------------------------------------------------
    def checkout(
        self, session_id: str, factory: Callable[[], T]
    ) -> Tuple[SessionEntry, bool]:
        """Fetch (or create) a session and mark it in use.

        Returns ``(entry, created)``.  The caller must hold
        ``entry.lock`` while touching ``entry.state`` and call
        :meth:`checkin` when the decision completes.  When the table is
        full of busy sessions, the cap still holds: the *new* session is
        created but the oldest idle entry is evicted as soon as one
        exists (eviction is retried on every checkout).
        """
        with self._lock:
            entry = self._entries.get(session_id)
            created = entry is None
            if entry is None:
                entry = SessionEntry(session_id, factory())
                self._entries[session_id] = entry
                self.created += 1
            else:
                self._entries.move_to_end(session_id)
            entry.in_use = True
            self._evict_over_cap()
            size = len(self._entries)
            if size > self.max_size_seen:
                self.max_size_seen = size
            return entry, created

    def checkin(self, entry: SessionEntry) -> None:
        """Release an entry checked out by :meth:`checkout`."""
        with self._lock:
            entry.in_use = False
            self._evict_over_cap()

    def _evict_over_cap(self) -> None:
        """Drop LRU idle entries until the cap holds (lock held)."""
        while len(self._entries) > self.max_sessions:
            victim_id = None
            for session_id, entry in self._entries.items():
                if not entry.in_use:
                    victim_id = session_id
                    break
            if victim_id is None:
                # Every resident session has a decision in flight; the
                # next checkin retries.  max_in_flight bounds the excess.
                return
            del self._entries[victim_id]
            self.evicted += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._entries

    def ids(self) -> Iterator[str]:
        """Resident session ids, LRU first (snapshot)."""
        with self._lock:
            return iter(list(self._entries.keys()))

    def peek(self, session_id: str) -> Optional[SessionEntry]:
        """Fetch an entry without touching LRU order or the latch."""
        with self._lock:
            return self._entries.get(session_id)
