"""Three-tier graceful degradation for per-request ABR decisions.

Under a hard per-decision deadline the service can never answer "sorry,
the optimizer was slow" — it must always return *some* playable rung.  The
degradation ladder encodes the fallback order, each tier an order of
magnitude cheaper than the one above (measured on the 6-rung ladder):

* **tier 0** — the full :class:`~repro.core.controller.SodaController`
  horizon solve (fast backend, ~100 µs): highest quality decisions;
* **tier 1** — a precomputed :class:`~repro.core.lookup.DecisionTable`
  nearest-neighbour lookup (~10 µs): SODA's policy quantized to a grid;
* **tier 2** — the stateless BBA buffer rule (~1 µs): needs no throughput
  signal, no table, and cannot fail.

Tier choice is driven by the *remaining* deadline budget through an
injectable monotonic clock: tier 0 is attempted only while at least
``tier0_budget`` seconds remain (and the circuit breaker allows it),
tier 1 while ``tier1_budget`` remains, and tier 2 is the unconditional
floor.  A tier-0 exception or deadline overrun is reported to the breaker,
which eventually forces tier 1+ entirely (see
:mod:`repro.service.breaker`).

Every intervention is counted; :meth:`StatsCounters.snapshot` freezes the
counters into a :class:`ServiceStats` for the health endpoint.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..abr.base import PlayerObservation
from ..abr.resilient import validate_rung
from .breaker import CircuitBreaker

__all__ = [
    "TIER_SOLVER",
    "TIER_TABLE",
    "TIER_RULE",
    "TierDecision",
    "ServiceStats",
    "StatsCounters",
    "DegradationLadder",
]

#: tier indices, in degradation order
TIER_SOLVER = 0
TIER_TABLE = 1
TIER_RULE = 2


@dataclass(frozen=True)
class TierDecision:
    """Outcome of one ladder descent.

    Attributes:
        quality: the committed rung (always inside the ladder).
        tier: which tier produced it (0 solver, 1 table, 2 rule).
        deferred: the producing tier answered "defer" and the ladder
            resolved it to holding the previous rung.
        solver_error: tier 0 raised and the ladder degraded.
        overran: tier 0 finished past the decision deadline.
    """

    quality: int
    tier: int
    deferred: bool = False
    solver_error: bool = False
    overran: bool = False


@dataclass(frozen=True)
class ServiceStats:
    """Frozen counter snapshot of a decision service.

    Attributes:
        decisions: total ``decide`` calls answered.
        tier0_decisions: answers produced by the full solver.
        tier1_decisions: answers produced by the decision-table lookup.
        tier2_decisions: answers produced by the stateless buffer rule
            (including every shed request).
        shed: requests refused an in-flight slot and answered at tier 2.
        solver_errors: tier-0 exceptions contained by the ladder.
        deadline_overruns: tier-0 solves that finished past the deadline.
        deferrals_resolved: defer answers resolved to holding a rung.
        sanitized_observations: requests whose observation needed repair.
        sessions_created: session states created over the service lifetime.
        sessions_evicted: sessions LRU-evicted by the admission table.
        sessions_active: sessions currently resident.
        max_sessions_seen: high-water mark of resident sessions.
    """

    decisions: int = 0
    tier0_decisions: int = 0
    tier1_decisions: int = 0
    tier2_decisions: int = 0
    shed: int = 0
    solver_errors: int = 0
    deadline_overruns: int = 0
    deferrals_resolved: int = 0
    sanitized_observations: int = 0
    sessions_created: int = 0
    sessions_evicted: int = 0
    sessions_active: int = 0
    max_sessions_seen: int = 0

    @property
    def degraded_decisions(self) -> int:
        """Answers that did not come from the full solver."""
        return self.tier1_decisions + self.tier2_decisions

    def shed_rate(self) -> float:
        """Fraction of decisions answered by shedding."""
        return self.shed / self.decisions if self.decisions else 0.0


class StatsCounters:
    """Thread-safe mutable counters behind :class:`ServiceStats`."""

    _FIELDS = (
        "decisions", "tier0_decisions", "tier1_decisions", "tier2_decisions",
        "shed", "solver_errors", "deadline_overruns", "deferrals_resolved",
        "sanitized_observations", "sessions_created", "sessions_evicted",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for field in self._FIELDS:
            setattr(self, field, 0)
        self.sessions_active = 0
        self.max_sessions_seen = 0

    def bump(self, field: str, amount: int = 1) -> None:
        """Atomically increment one counter."""
        with self._lock:
            setattr(self, field, getattr(self, field) + amount)

    def record_tier(self, decision: TierDecision) -> None:
        """Account one ladder answer (tier + intervention flags)."""
        with self._lock:
            self.decisions += 1
            if decision.tier == TIER_SOLVER:
                self.tier0_decisions += 1
            elif decision.tier == TIER_TABLE:
                self.tier1_decisions += 1
            else:
                self.tier2_decisions += 1
            if decision.deferred:
                self.deferrals_resolved += 1
            if decision.solver_error:
                self.solver_errors += 1
            if decision.overran:
                self.deadline_overruns += 1

    def record_batch(
        self, tier: int, count: int, deferred: int = 0
    ) -> None:
        """Account ``count`` same-tier answers in one lock trip.

        The vectorized batch path produces whole runs of tier-1/tier-2
        answers at once; per-answer locking would cost more than the
        answers themselves.
        """
        if count <= 0:
            return
        with self._lock:
            self.decisions += count
            if tier == TIER_SOLVER:
                self.tier0_decisions += count
            elif tier == TIER_TABLE:
                self.tier1_decisions += count
            else:
                self.tier2_decisions += count
            self.deferrals_resolved += deferred

    def set_sessions(self, active: int) -> None:
        """Track the resident-session count and its high-water mark."""
        with self._lock:
            self.sessions_active = active
            if active > self.max_sessions_seen:
                self.max_sessions_seen = active

    def snapshot(self) -> ServiceStats:
        """Freeze the current counters into a :class:`ServiceStats`."""
        with self._lock:
            return ServiceStats(
                sessions_active=self.sessions_active,
                max_sessions_seen=self.max_sessions_seen,
                **{field: getattr(self, field) for field in self._FIELDS},
            )


class DegradationLadder:
    """Deadline-aware tier selection around one request.

    Args:
        tier1: the decision-table lookup, ``obs -> Optional[rung]``;
            ``None`` disables tier 1 (the ladder jumps straight to tier 2).
        tier2: the stateless floor rule, ``obs -> rung``; must be cheap
            and total — its answer is validated and floored to rung 0
            as the last line of defense.
        breaker: circuit breaker consulted before every tier-0 attempt
            and informed of tier-0 exceptions and deadline overruns.
        deadline: per-decision wall-clock budget, seconds.
        tier0_budget: minimum remaining budget to attempt the solver.
        tier1_budget: minimum remaining budget to attempt the lookup.
        clock: injectable monotonic time source shared with the breaker.

    Raises:
        ValueError: on non-positive deadline or inverted tier budgets.
    """

    def __init__(
        self,
        tier1: Optional[Callable[[PlayerObservation], Optional[int]]],
        tier2: Callable[[PlayerObservation], Optional[int]],
        breaker: CircuitBreaker,
        deadline: float = 0.05,
        tier0_budget: Optional[float] = None,
        tier1_budget: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        self.deadline = deadline
        self.tier0_budget = (
            0.5 * deadline if tier0_budget is None else tier0_budget
        )
        self.tier1_budget = (
            0.05 * deadline if tier1_budget is None else tier1_budget
        )
        if not 0 <= self.tier1_budget <= self.tier0_budget:
            raise ValueError("need 0 <= tier1_budget <= tier0_budget")
        self.tier1 = tier1
        self.tier2 = tier2
        self.breaker = breaker
        self.clock = clock or time.monotonic

    # ------------------------------------------------------------------
    def decide(
        self,
        obs: PlayerObservation,
        tier0: Callable[[PlayerObservation], Optional[int]],
        deadline_at: float,
    ) -> TierDecision:
        """Descend the ladder for one request; always returns a rung.

        Args:
            obs: the (already sanitized) player observation.
            tier0: this session's full solver — per-session state lives
                with the caller, so the solver arrives per call.
            deadline_at: absolute clock() value the answer is due by.
        """
        # ---- tier 0: the full horizon solve, breaker permitting -------
        if self.tier0_affordable(deadline_at) and self.breaker.allow():
            try:
                outcome = tier0(obs)
            except Exception as exc:
                outcome = exc
            return self.resolve_tier0(obs, outcome, deadline_at)
        return self._descend(obs, deadline_at, False, False)

    def tier0_affordable(self, deadline_at: float) -> bool:
        """Whether enough budget remains to attempt the full solver."""
        return deadline_at - self.clock() >= self.tier0_budget

    def resolve_tier0(
        self,
        obs: PlayerObservation,
        outcome,
        deadline_at: float,
    ) -> TierDecision:
        """Finish the ladder for a tier-0 attempt computed elsewhere.

        ``outcome`` is the solver's answer (rung or ``None`` for defer) or
        the exception it raised.  The batched tier-0 path solves many
        sessions in one kernel call and then runs each session's outcome
        through this method, so breaker accounting, overrun detection,
        defer resolution, and tier descent stay byte-identical to the
        sequential :meth:`decide`.  The caller must already hold a breaker
        ``allow()`` grant for the attempt.
        """
        levels = obs.ladder.levels
        solver_error = False
        overran = False
        if isinstance(outcome, BaseException):
            solver_error = True
            self.breaker.record_failure()
        else:
            # An answer past the deadline counts against the breaker,
            # but the work is already spent — serving the computed
            # rung beats burning more time in tier 1.  The breaker
            # will stop further exposure.
            overran = self.clock() > deadline_at
            if outcome is None:
                # A defer is a legitimate answer, not a failure.
                if overran:
                    self.breaker.record_failure()
                else:
                    self.breaker.record_success()
                held = validate_rung(obs.previous_quality, levels)
                if held is not None:
                    return TierDecision(
                        quality=held,
                        tier=TIER_SOLVER,
                        deferred=True,
                        overran=overran,
                    )
                # Nothing to hold at session start: descend a tier.
            else:
                rung = validate_rung(outcome, levels)
                if rung is None:
                    # Out-of-range/NaN answer: treat as an exception.
                    solver_error = True
                    self.breaker.record_failure()
                else:
                    if overran:
                        self.breaker.record_failure()
                    else:
                        self.breaker.record_success()
                    return TierDecision(
                        quality=rung, tier=TIER_SOLVER, overran=overran
                    )
        return self._descend(obs, deadline_at, solver_error, overran)

    def _descend(
        self,
        obs: PlayerObservation,
        deadline_at: float,
        solver_error: bool,
        overran: bool,
    ) -> TierDecision:
        """Tiers 1 and 2, carrying the tier-0 intervention flags."""
        levels = obs.ladder.levels

        # ---- tier 1: the precomputed decision table -------------------
        if (
            self.tier1 is not None
            and deadline_at - self.clock() >= self.tier1_budget
        ):
            try:
                answer = self.tier1(obs)
            except Exception:
                # A broken table must not masquerade as a defer — descend.
                resolved = None
            else:
                resolved = self._resolve(answer, obs, levels)
            if resolved is not None:
                rung, deferred = resolved
                return TierDecision(
                    quality=rung,
                    tier=TIER_TABLE,
                    deferred=deferred,
                    solver_error=solver_error,
                    overran=overran,
                )

        # ---- tier 2: the stateless floor rule -------------------------
        return TierDecision(
            quality=self.floor_quality(obs),
            tier=TIER_RULE,
            solver_error=solver_error,
            overran=overran,
        )

    # ------------------------------------------------------------------
    def floor_quality(self, obs: PlayerObservation) -> int:
        """The tier-2 answer: total, validated, floored to rung 0."""
        try:
            answer = self.tier2(obs)
        except Exception:
            return 0
        rung = validate_rung(answer, obs.ladder.levels)
        return rung if rung is not None else 0

    @staticmethod
    def _resolve(answer, obs: PlayerObservation, levels: int):
        """Validate a tier-1 answer; map defer to holding the previous rung.

        Returns ``(rung, was_deferred)`` or ``None`` when the answer is
        unusable and the ladder should descend to tier 2.
        """
        if answer is None:
            held = validate_rung(obs.previous_quality, levels)
            if held is None:
                return None
            return held, True
        rung = validate_rung(answer, levels)
        if rung is None:
            return None
        return rung, False
