"""The multi-session ABR decision service.

:class:`DecisionService` is the long-lived front end the rest of the
package's pieces were built for: many concurrent streaming sessions, each
asking ``decide(session_id, observation)`` and each owed an answer within a
hard deadline.  One instance composes

* an :class:`~repro.service.admission.AdmissionGate` (bounded in-flight
  decisions; overload is shed to the tier-2 floor, never errored),
* a :class:`~repro.service.admission.SessionTable` (LRU-bounded per-session
  solver state),
* a :class:`~repro.service.breaker.CircuitBreaker` guarding the tier-0
  solver,
* a :class:`~repro.service.degrade.DegradationLadder` choosing between the
  full SODA solve, the precomputed
  :class:`~repro.core.lookup.DecisionTable`, and the stateless BBA rule by
  remaining deadline budget, and
* a :class:`~repro.service.health.LatencyRing` feeding the health snapshot.

Per-session state is a :class:`SodaController` (fast backend) plus sample
bookkeeping; the shared decision table and BBA rule are immutable after
construction and therefore safe to read from every worker thread.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..abr.base import PlayerObservation
from ..abr.bba import BbaController
from ..abr.resilient import sanitize_observation
from ..core.controller import SodaController
from ..core.lookup import DecisionTable
from ..core.objective import SodaConfig
from ..sim.video import BitrateLadder
from .admission import AdmissionGate, SessionTable
from .breaker import CircuitBreaker
from .degrade import (
    TIER_RULE,
    DegradationLadder,
    ServiceStats,
    StatsCounters,
    TierDecision,
)
from .health import HealthSnapshot, LatencyRing, build_snapshot

__all__ = ["Decision", "DecisionService", "SessionState"]

#: a per-session tier-0 solver: obs -> rung or None (defer)
Tier0 = Callable[[PlayerObservation], Optional[int]]


@dataclass(frozen=True)
class Decision:
    """The service's answer to one ``decide`` call.

    Attributes:
        session_id: the session the answer belongs to.
        quality: the committed rung, always inside the ladder.
        tier: which degradation tier produced it (0/1/2).
        deferred: the tier answered "defer" and the previous rung is held.
        solver_error: the tier-0 solver raised and the ladder degraded.
        overran: the tier-0 solve finished past the deadline.
        shed: admission control refused a slot; the answer is the
            tier-2 floor.
        sanitized: the observation needed repair before deciding.
        latency: wall seconds this call took inside the service.
    """

    session_id: str
    quality: int
    tier: int
    deferred: bool = False
    solver_error: bool = False
    overran: bool = False
    shed: bool = False
    sanitized: bool = False
    latency: float = 0.0


class SessionState:
    """Per-session solver state stored in the admission table."""

    __slots__ = ("controller", "tier0", "last_fed", "decisions")

    def __init__(self, controller: SodaController, tier0: Tier0) -> None:
        self.controller = controller
        self.tier0 = tier0
        #: start time of the newest history sample already fed to the
        #: predictor, so repeated observations do not double-count.
        self.last_fed = float("-inf")
        self.decisions = 0


class DecisionService:
    """Deadline-aware, multi-session ABR decision service.

    Args:
        ladder: the encoding ladder all sessions share.
        max_buffer: client buffer capacity, seconds.
        config: SODA tuning; defaults to the fast solver backend (the
            reference backend is ~40× slower and would starve the
            deadline).
        deadline: per-decision wall-clock budget, seconds.
        max_in_flight: concurrent decisions before load shedding.
        max_sessions: resident-session cap (LRU eviction beyond it).
        table_points: decision-table grid size per axis; ``0`` skips the
            table entirely (tier 1 disabled — degradation jumps from the
            solver straight to the buffer rule).
        breaker: pre-built circuit breaker; a default one (5 consecutive
            failures, 1 s cooldown) is created when omitted.
        tier0_factory: ``(session_id, controller) -> tier0`` hook that
            builds the per-session solver callable.  The default calls
            ``controller.select_quality``; the chaos-soak harness swaps
            in slow/crashing wrappers here.
        clock: injectable monotonic time source shared by the ladder and
            breaker (deterministic tests use a fake clock).

    Raises:
        ValueError: on a non-positive deadline (other bounds are
            validated by the composed components).
    """

    def __init__(
        self,
        ladder: BitrateLadder,
        max_buffer: float,
        config: Optional[SodaConfig] = None,
        deadline: float = 0.05,
        max_in_flight: int = 64,
        max_sessions: int = 1024,
        table_points: int = 32,
        breaker: Optional[CircuitBreaker] = None,
        tier0_factory: Optional[
            Callable[[str, SodaController], Tier0]
        ] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        self.ladder = ladder
        self.max_buffer = max_buffer
        self.config = config or SodaConfig(solver_backend="fast")
        self.deadline = deadline
        self.clock = clock or time.monotonic

        self.table: Optional[DecisionTable] = None
        if table_points:
            self.table = DecisionTable(
                ladder,
                max_buffer,
                config=self.config,
                throughput_points=table_points,
                buffer_points=table_points,
            )

        self.breaker = breaker or CircuitBreaker(clock=self.clock)
        self._rule = BbaController()  # stateless given obs: shareable
        self.degradation = DegradationLadder(
            tier1=(
                self.table.lookup_observation
                if self.table is not None
                else None
            ),
            tier2=self._rule.select_quality,
            breaker=self.breaker,
            deadline=deadline,
            clock=self.clock,
        )

        self.gate = AdmissionGate(max_in_flight)
        self.sessions = SessionTable(max_sessions)
        self.counters = StatsCounters()
        self.latencies = LatencyRing()
        self._tier0_factory = tier0_factory or (
            lambda session_id, controller: controller.select_quality
        )

    # ------------------------------------------------------------------
    def _new_session(self, session_id: str) -> SessionState:
        controller = SodaController(config=self.config)
        return SessionState(
            controller, self._tier0_factory(session_id, controller)
        )

    def _feed_history(
        self, state: SessionState, obs: PlayerObservation
    ) -> None:
        """Forward history samples the predictor has not seen yet."""
        for sample in obs.history:
            if sample.start > state.last_fed:
                state.controller.on_download(sample)
                state.last_fed = sample.start

    # ------------------------------------------------------------------
    def decide(self, session_id: str, obs: PlayerObservation) -> Decision:
        """Answer one session's request; never raises, never blocks long.

        The deadline clock starts here.  An observation that arrives
        corrupted is repaired first (the repair is counted); a request
        that finds no free decision slot is shed straight to the tier-2
        floor without touching session state.
        """
        started = self.clock()
        deadline_at = started + self.deadline

        clean = sanitize_observation(obs)
        sanitized = clean is not obs
        if sanitized:
            self.counters.bump("sanitized_observations")

        if not self.gate.try_acquire():
            tier = TierDecision(
                quality=self.degradation.floor_quality(clean), tier=TIER_RULE
            )
            self.counters.bump("shed")
            return self._finish(
                session_id, tier, started, shed=True, sanitized=sanitized
            )

        try:
            entry, _created = self.sessions.checkout(
                session_id, lambda: self._new_session(session_id)
            )
            try:
                with entry.lock:
                    state: SessionState = entry.state
                    self._feed_history(state, clean)
                    tier = self.degradation.decide(
                        clean, state.tier0, deadline_at
                    )
                    state.decisions += 1
            finally:
                self.sessions.checkin(entry)
        finally:
            self.gate.release()
        return self._finish(
            session_id, tier, started, shed=False, sanitized=sanitized
        )

    def _finish(
        self,
        session_id: str,
        tier: TierDecision,
        started: float,
        shed: bool,
        sanitized: bool,
    ) -> Decision:
        latency = self.clock() - started
        self.counters.record_tier(tier)
        self.counters.set_sessions(len(self.sessions))
        self.latencies.record(latency)
        return Decision(
            session_id=session_id,
            quality=tier.quality,
            tier=tier.tier,
            deferred=tier.deferred,
            solver_error=tier.solver_error,
            overran=tier.overran,
            shed=shed,
            sanitized=sanitized,
            latency=latency,
        )

    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Counter snapshot with session-table figures folded in."""
        return dataclasses.replace(
            self.counters.snapshot(),
            sessions_created=self.sessions.created,
            sessions_evicted=self.sessions.evicted,
            sessions_active=len(self.sessions),
            max_sessions_seen=self.sessions.max_size_seen,
        )

    def health(self) -> HealthSnapshot:
        """Liveness/readiness/latency snapshot for pollers and artifacts."""
        return build_snapshot(
            self.stats(), self.breaker, self.latencies, self.deadline
        )
