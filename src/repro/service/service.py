"""The multi-session ABR decision service.

:class:`DecisionService` is the long-lived front end the rest of the
package's pieces were built for: many concurrent streaming sessions, each
asking ``decide(session_id, observation)`` and each owed an answer within a
hard deadline.  One instance composes

* an :class:`~repro.service.admission.AdmissionGate` (bounded in-flight
  decisions; overload is shed to the tier-2 floor, never errored),
* a :class:`~repro.service.admission.SessionTable` (LRU-bounded per-session
  solver state),
* a :class:`~repro.service.breaker.CircuitBreaker` guarding the tier-0
  solver,
* a :class:`~repro.service.degrade.DegradationLadder` choosing between the
  full SODA solve, the precomputed
  :class:`~repro.core.lookup.DecisionTable`, and the stateless BBA rule by
  remaining deadline budget, and
* a :class:`~repro.service.health.LatencyRing` feeding the health snapshot.

Per-session state is a :class:`SodaController` (fast backend) plus sample
bookkeeping; the shared decision table and BBA rule are immutable after
construction and therefore safe to read from every worker thread.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..abr.base import PlayerObservation
from ..abr.bba import BbaController
from ..abr.resilient import sanitize_observation
from ..core.controller import SodaController, select_quality_batch
from ..core.lookup import DecisionTable
from ..core.objective import SodaConfig
from ..prediction.base import ThroughputSample
from ..sim.video import BitrateLadder
from .admission import AdaptiveGate, AdmissionGate, SessionTable
from .breaker import CircuitBreaker
from .degrade import (
    TIER_RULE,
    TIER_TABLE,
    DegradationLadder,
    ServiceStats,
    StatsCounters,
    TierDecision,
)
from .health import BatchCounters, HealthSnapshot, LatencyRing, build_snapshot

__all__ = ["Decision", "DecisionService", "SessionState"]

#: a per-session tier-0 solver: obs -> rung or None (defer)
Tier0 = Callable[[PlayerObservation], Optional[int]]


@dataclass(frozen=True)
class Decision:
    """The service's answer to one ``decide`` call.

    Attributes:
        session_id: the session the answer belongs to.
        quality: the committed rung, always inside the ladder.
        tier: which degradation tier produced it (0/1/2).
        deferred: the tier answered "defer" and the previous rung is held.
        solver_error: the tier-0 solver raised and the ladder degraded.
        overran: the tier-0 solve finished past the deadline.
        shed: admission control refused a slot; the answer is the
            tier-2 floor.
        sanitized: the observation needed repair before deciding.
        latency: wall seconds this call took inside the service.
    """

    session_id: str
    quality: int
    tier: int
    deferred: bool = False
    solver_error: bool = False
    overran: bool = False
    shed: bool = False
    sanitized: bool = False
    latency: float = 0.0


class SessionState:
    """Per-session solver state stored in the admission table."""

    __slots__ = ("controller", "tier0", "last_fed", "decisions")

    def __init__(self, controller: SodaController, tier0: Tier0) -> None:
        self.controller = controller
        self.tier0 = tier0
        #: start time of the newest history sample already fed to the
        #: predictor, so repeated observations do not double-count.
        self.last_fed = float("-inf")
        self.decisions = 0


class DecisionService:
    """Deadline-aware, multi-session ABR decision service.

    Args:
        ladder: the encoding ladder all sessions share.
        max_buffer: client buffer capacity, seconds.
        config: SODA tuning; defaults to the fast solver backend (the
            reference backend is ~40× slower and would starve the
            deadline).
        deadline: per-decision wall-clock budget, seconds.
        max_in_flight: concurrent decisions before load shedding.
        max_sessions: resident-session cap (LRU eviction beyond it).
        table_points: decision-table grid size per axis; ``0`` skips the
            table entirely (tier 1 disabled — degradation jumps from the
            solver straight to the buffer rule).
        table: a pre-built (typically memory-mapped, see
            :meth:`~repro.core.lookup.DecisionTable.load_mmap`) decision
            table to serve tier 1 from; overrides ``table_points`` so
            shard workers pay zero build cost.
        tier0_budget: minimum remaining deadline budget to attempt the
            tier-0 solver (default half the deadline).  Batch serving
            lowers the solver share by raising this toward the deadline.
        tier1_budget: minimum remaining budget for the table lookup.
        breaker: pre-built circuit breaker; a default one (5 consecutive
            failures, 1 s cooldown) is created when omitted.
        gate: pre-built admission gate; by default an
            :class:`~repro.service.admission.AdaptiveGate` whose AIMD
            limit starts at ``max_in_flight`` (so clean load behaves
            exactly like the fixed gate) and backs off when the measured
            p99 approaches the deadline.  Pass a plain
            :class:`~repro.service.admission.AdmissionGate` to pin the
            limit.
        tier0_factory: ``(session_id, controller) -> tier0`` hook that
            builds the per-session solver callable.  The default calls
            ``controller.select_quality``; the chaos-soak harness swaps
            in slow/crashing wrappers here.  Supplying a factory also
            disables cross-session tier-0 batching (a wrapped solver
            cannot be proven equivalent to the batched kernel), so the
            batch paths fall back to the sequential per-request loop.
        tier0_chunk: sessions per batched tier-0 solver call inside
            :meth:`decide_many` / :meth:`decide_columns`; ``1`` disables
            batching.  Budget is re-checked between chunks, so a large
            batch still degrades mid-way when the deadline thins.
        clock: injectable monotonic time source shared by the ladder and
            breaker (deterministic tests use a fake clock).

    Raises:
        ValueError: on a non-positive deadline (other bounds are
            validated by the composed components).
    """

    def __init__(
        self,
        ladder: BitrateLadder,
        max_buffer: float,
        config: Optional[SodaConfig] = None,
        deadline: float = 0.05,
        max_in_flight: int = 64,
        max_sessions: int = 1024,
        table_points: int = 32,
        table: Optional[DecisionTable] = None,
        tier0_budget: Optional[float] = None,
        tier1_budget: Optional[float] = None,
        breaker: Optional[CircuitBreaker] = None,
        gate: Optional[AdmissionGate] = None,
        tier0_factory: Optional[
            Callable[[str, SodaController], Tier0]
        ] = None,
        tier0_chunk: int = 16,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        if tier0_chunk < 1:
            raise ValueError("tier0_chunk must be at least 1")
        self.ladder = ladder
        self.max_buffer = max_buffer
        self.config = config or SodaConfig(solver_backend="fast")
        self.deadline = deadline
        self.clock = clock or time.monotonic

        self.table: Optional[DecisionTable] = table
        if table is None and table_points:
            self.table = DecisionTable(
                ladder,
                max_buffer,
                config=self.config,
                throughput_points=table_points,
                buffer_points=table_points,
            )

        self.breaker = breaker or CircuitBreaker(clock=self.clock)
        self._rule = BbaController()  # stateless given obs: shareable
        self.degradation = DegradationLadder(
            tier1=(
                self.table.lookup_observation
                if self.table is not None
                else None
            ),
            tier2=self._rule.select_quality,
            breaker=self.breaker,
            deadline=deadline,
            tier0_budget=tier0_budget,
            tier1_budget=tier1_budget,
            clock=self.clock,
        )

        self.gate = gate or AdaptiveGate(max_in_flight, deadline)
        self.sessions = SessionTable(max_sessions)
        self.counters = StatsCounters()
        self.latencies = LatencyRing()
        self.batches = BatchCounters()
        # Cross-session batching requires the *default* tier-0 path: the
        # batched kernel is differentially proven equivalent to
        # ``controller.select_quality``, not to arbitrary wrappers.
        self._batchable = tier0_factory is None
        self.tier0_chunk = int(tier0_chunk)
        self._tier0_factory = tier0_factory or (
            lambda session_id, controller: controller.select_quality
        )

    # ------------------------------------------------------------------
    def _new_session(self, session_id: str) -> SessionState:
        controller = SodaController(config=self.config)
        return SessionState(
            controller, self._tier0_factory(session_id, controller)
        )

    def _feed_history(
        self, state: SessionState, obs: PlayerObservation
    ) -> None:
        """Forward history samples the predictor has not seen yet."""
        for sample in obs.history:
            if sample.start > state.last_fed:
                state.controller.on_download(sample)
                state.last_fed = sample.start

    # ------------------------------------------------------------------
    def decide(
        self,
        session_id: str,
        obs: PlayerObservation,
        deadline_at: Optional[float] = None,
    ) -> Decision:
        """Answer one session's request; never raises, never blocks long.

        The deadline clock starts here unless the caller supplies an
        absolute ``deadline_at`` — a shard worker does, so budget spent
        in transit on the pipe still counts against the answer.  An
        observation that arrives corrupted is repaired first (the repair
        is counted); a request that finds no free decision slot is shed
        straight to the tier-2 floor without touching session state.
        """
        started = self.clock()
        if deadline_at is None:
            deadline_at = started + self.deadline

        clean = sanitize_observation(obs)
        sanitized = clean is not obs
        if sanitized:
            self.counters.bump("sanitized_observations")

        if not self.gate.try_acquire(established=session_id in self.sessions):
            tier = TierDecision(
                quality=self.degradation.floor_quality(clean), tier=TIER_RULE
            )
            self.counters.bump("shed")
            return self._finish(
                session_id, tier, started, shed=True, sanitized=sanitized
            )

        try:
            tier = self._decide_admitted(session_id, clean, deadline_at)
        finally:
            self.gate.release()
        return self._finish(
            session_id, tier, started, shed=False, sanitized=sanitized
        )

    def _decide_admitted(
        self,
        session_id: str,
        clean: PlayerObservation,
        deadline_at: float,
    ) -> TierDecision:
        """Ladder descent for one admitted, already-sanitized request."""
        entry, _created = self.sessions.checkout(
            session_id, lambda: self._new_session(session_id)
        )
        try:
            with entry.lock:
                state: SessionState = entry.state
                self._feed_history(state, clean)
                tier = self.degradation.decide(
                    clean, state.tier0, deadline_at
                )
                state.decisions += 1
        finally:
            self.sessions.checkin(entry)
        return tier

    def _decide_admitted_many(
        self,
        items: Sequence[Tuple[str, PlayerObservation]],
        deadline_at: float,
    ) -> List[TierDecision]:
        """Ladder descent for a chunk of admitted requests, tier-0 batched.

        All sessions' horizon solves run through one
        :func:`~repro.core.controller.select_quality_batch` call; the
        breaker grant, overrun check, defer resolution, and descent then
        run per session via
        :meth:`~repro.service.degrade.DegradationLadder.resolve_tier0`,
        so the per-request contract is identical to the sequential path.
        Entry locks are acquired in canonical (sorted session-id) order —
        the same discipline the shard scatter path uses — so concurrent
        batches over overlapping sessions cannot deadlock.

        Duplicate session ids within one chunk are solved in *waves*
        (first occurrences, then seconds, ...): a later duplicate's
        history feed must not reach the shared predictor before the
        earlier request's solve, or the batch would answer the earlier
        request from state the sequential path builds only afterwards.
        """
        tiers: List[Optional[TierDecision]] = [None] * len(items)
        remaining = list(range(len(items)))
        while remaining:
            seen: set = set()
            wave: List[int] = []
            rest: List[int] = []
            for j in remaining:
                sid = items[j][0]
                if sid in seen:
                    rest.append(j)
                else:
                    seen.add(sid)
                    wave.append(j)
            self._decide_admitted_wave(items, wave, tiers, deadline_at)
            remaining = rest
        return tiers  # type: ignore[return-value]

    def _decide_admitted_wave(
        self,
        items: Sequence[Tuple[str, PlayerObservation]],
        wave: List[int],
        tiers: List[Optional[TierDecision]],
        deadline_at: float,
    ) -> None:
        """Feed and solve one duplicate-free wave of a batched chunk."""
        entries: dict = {}
        for j in wave:
            sid = items[j][0]
            entry, _created = self.sessions.checkout(
                sid, lambda sid=sid: self._new_session(sid)
            )
            entries[sid] = entry
        ordered = [entries[sid] for sid in sorted(entries)]
        for entry in ordered:
            entry.lock.acquire()
        try:
            pairs: List[Tuple[SodaController, PlayerObservation]] = []
            slots: List[int] = []
            for j in wave:
                sid, clean = items[j]
                state: SessionState = entries[sid].state
                self._feed_history(state, clean)
                if (
                    self.degradation.tier0_affordable(deadline_at)
                    and self.breaker.allow()
                ):
                    pairs.append((state.controller, clean))
                    slots.append(j)
                else:
                    tiers[j] = self.degradation._descend(
                        clean, deadline_at, False, False
                    )
                state.decisions += 1
            if pairs:
                solve_started = self.clock()
                outcomes = select_quality_batch(pairs)
                self.batches.record(
                    len(pairs), self.clock() - solve_started
                )
                for j, outcome in zip(slots, outcomes):
                    tiers[j] = self.degradation.resolve_tier0(
                        items[j][1], outcome, deadline_at
                    )
        finally:
            for entry in reversed(ordered):
                entry.lock.release()
            for entry in ordered:
                self.sessions.checkin(entry)

    # ------------------------------------------------------------------
    def decide_many(
        self,
        requests: Sequence[Tuple[str, PlayerObservation]],
        deadline_at: Optional[float] = None,
    ) -> List[Decision]:
        """Answer a batch of requests under one shared deadline.

        Every request in the batch owes its answer by the *same*
        ``deadline_at`` (defaulting to now + the per-decision deadline),
        so the batch degrades exactly like a queue draining under load:
        requests at the front get full tier-0 solves while at least
        ``tier0_budget`` remains, and the moment the budget thins, the
        **entire remaining batch** is answered in one vectorized tier-1
        pass over the decision table (one NumPy gather instead of
        per-request solves), falling to the tier-2 floor when even the
        lookup budget is gone.  This is what makes 100k+ decisions/sec
        aggregate serving honest: the contract (in-range rung, within
        deadline) is identical to :meth:`decide`, only the quality tier
        rides the offered load.

        The batch claims a single admission slot; a shed batch is
        answered entirely from the floor.  Per-session solver state is
        touched only by the tier-0 prefix — the vectorized tiers are
        stateless, so the monotone history-feed invariant is preserved.
        """
        started = self.clock()
        if deadline_at is None:
            deadline_at = started + self.deadline
        n = len(requests)
        if n == 0:
            return []

        if not self.gate.try_acquire():
            self.counters.bump("shed", n)
            decisions = [
                self._floor_decision(sid, obs, started, shed=True)
                for sid, obs in requests
            ]
            self.counters.record_batch(TIER_RULE, n)
            self.latencies.record_many(self.clock() - started, n)
            return decisions

        try:
            decisions: List[Optional[Decision]] = [None] * n
            solved = 0
            chunk_size = self.tier0_chunk if self._batchable else 1
            # ---- tier-0 prefix: batched solver chunks while budget lasts
            while (
                solved < n
                and self.degradation.tier0_affordable(deadline_at)
            ):
                stop = min(n, solved + chunk_size)
                items: List[Tuple[str, PlayerObservation]] = []
                sanitized_flags: List[bool] = []
                for sid, obs in requests[solved:stop]:
                    clean = sanitize_observation(obs)
                    sanitized = clean is not obs
                    if sanitized:
                        self.counters.bump("sanitized_observations")
                    items.append((sid, clean))
                    sanitized_flags.append(sanitized)
                if len(items) == 1:
                    tiers = [
                        self._decide_admitted(
                            items[0][0], items[0][1], deadline_at
                        )
                    ]
                else:
                    tiers = self._decide_admitted_many(items, deadline_at)
                for (sid, _clean), tier, sanitized in zip(
                    items, tiers, sanitized_flags
                ):
                    decisions[solved] = self._finish(
                        sid, tier, started, shed=False, sanitized=sanitized
                    )
                    solved += 1
            if solved < n:
                rest = requests[solved:]
                tail = self._decide_vectorized(rest, started, deadline_at)
                decisions[solved:] = tail
        finally:
            self.gate.release()
        self.gate.observe(self.clock() - started)
        return decisions  # type: ignore[return-value]

    def _decide_vectorized(
        self,
        requests: Sequence[Tuple[str, PlayerObservation]],
        started: float,
        deadline_at: float,
    ) -> List[Decision]:
        """Answer ``requests`` in one tier-1 table gather (tier-2 floor
        when the table or its budget is gone)."""
        n = len(requests)
        use_table = (
            self.table is not None
            and deadline_at - self.clock() >= self.degradation.tier1_budget
        )
        if not use_table:
            decisions = [
                self._floor_decision(sid, obs, started, shed=False)
                for sid, obs in requests
            ]
            self.counters.record_batch(TIER_RULE, n)
            self.latencies.record_many(self.clock() - started, n)
            return decisions

        tputs = np.empty(n)
        buffers = np.empty(n)
        prevs = np.empty(n, dtype=np.int64)
        for i, (_sid, obs) in enumerate(requests):
            history = obs.history
            tputs[i] = history[-1].throughput if history else -1.0
            buffers[i] = obs.buffer_level
            prev = obs.previous_quality
            prevs[i] = -1 if prev is None else prev
        rungs = self.table.lookup_batch(tputs, buffers, prevs)
        # lookup_batch treats out-of-range prev as "no previous rung" for
        # indexing; keep the raw value for defer resolution below.
        levels = self.ladder.levels
        valid_prev = (prevs >= 0) & (prevs < levels)

        latency = self.clock() - started
        decisions: List[Decision] = []
        deferred_count = 0
        floor_count = 0
        for i, (sid, obs) in enumerate(requests):
            rung = int(rungs[i])
            deferred = False
            tier = TIER_TABLE
            if rung < 0:
                if valid_prev[i]:
                    rung = int(prevs[i])
                    deferred = True
                    deferred_count += 1
                else:
                    # Defer with nothing to hold: descend to the floor.
                    rung = self.degradation.floor_quality(obs)
                    tier = TIER_RULE
                    floor_count += 1
            decisions.append(
                Decision(
                    session_id=sid,
                    quality=rung,
                    tier=tier,
                    deferred=deferred,
                    latency=latency,
                )
            )
        self.counters.record_batch(
            TIER_TABLE, n - floor_count, deferred=deferred_count
        )
        self.counters.record_batch(TIER_RULE, floor_count)
        self.latencies.record_many(latency, n)
        return decisions

    def decide_columns(
        self,
        session_ids: Sequence[str],
        throughputs: np.ndarray,
        buffers: np.ndarray,
        prevs: np.ndarray,
        deadline_at: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Answer a batch given only the decision-table axes.

        The columnar twin of :meth:`decide_many` for high-volume
        ingestion: each request is ``(last throughput, buffer level,
        previous rung)`` — exactly what the vectorized tiers consume — so
        a batch crosses process boundaries as three NumPy arrays instead
        of N observation objects.  Semantics match :meth:`decide_many`
        except that the tier-0 prefix sees a synthetic one-sample history
        (the reported throughput) rather than the client's full download
        log.  Non-finite or out-of-range inputs are clamped exactly like
        :meth:`~repro.core.lookup.DecisionTable.lookup_batch` — the
        sanitizer behaviour falls out of the table lookup itself.

        Args:
            session_ids: aligned session identifiers.
            throughputs: last measured throughput per request, Mb/s
                (``<= 0`` or non-finite meaning "no history yet").
            buffers: buffer level per request, seconds.
            prevs: previous rung per request, ``-1`` for none.
            deadline_at: absolute clock() value the answers are due by.

        Returns:
            ``(rungs, tiers, deferred)`` aligned int64/int8/bool arrays;
            every rung is inside the ladder.
        """
        started = self.clock()
        if deadline_at is None:
            deadline_at = started + self.deadline
        n = len(session_ids)
        empty = (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int8),
            np.empty(0, dtype=bool),
        )
        if n == 0:
            return empty
        tputs = np.asarray(throughputs, dtype=float)
        bufs = np.asarray(buffers, dtype=float)
        prev_arr = np.asarray(prevs, dtype=np.int64)
        rungs = np.empty(n, dtype=np.int64)
        tiers = np.empty(n, dtype=np.int8)
        deferred = np.zeros(n, dtype=bool)

        if not self.gate.try_acquire():
            self.counters.bump("shed", n)
            for i in range(n):
                rungs[i] = self._floor_from_columns(bufs[i], prev_arr[i])
            tiers[:] = TIER_RULE
            self.counters.record_batch(TIER_RULE, n)
            self.latencies.record_many(self.clock() - started, n)
            return rungs, tiers, deferred

        try:
            solved = 0
            chunk_size = self.tier0_chunk if self._batchable else 1
            while (
                solved < n
                and self.degradation.tier0_affordable(deadline_at)
            ):
                stop = min(n, solved + chunk_size)
                items = [
                    (
                        session_ids[i],
                        self._obs_from_columns(
                            tputs[i], bufs[i], prev_arr[i]
                        ),
                    )
                    for i in range(solved, stop)
                ]
                if len(items) == 1:
                    chunk_tiers = [
                        self._decide_admitted(
                            items[0][0], items[0][1], deadline_at
                        )
                    ]
                else:
                    chunk_tiers = self._decide_admitted_many(
                        items, deadline_at
                    )
                for tier in chunk_tiers:
                    self.counters.record_tier(tier)
                    rungs[solved] = tier.quality
                    tiers[solved] = tier.tier
                    deferred[solved] = tier.deferred
                    solved += 1
            if solved < n:
                self._columns_vectorized(
                    tputs, bufs, prev_arr, rungs, tiers, deferred,
                    solved, deadline_at,
                )
        finally:
            self.gate.release()
        latency = self.clock() - started
        self.latencies.record_many(latency, n)
        self.gate.observe(latency)
        return rungs, tiers, deferred

    def _columns_vectorized(
        self,
        tputs: np.ndarray,
        bufs: np.ndarray,
        prevs: np.ndarray,
        rungs: np.ndarray,
        tiers: np.ndarray,
        deferred: np.ndarray,
        start: int,
        deadline_at: float,
    ) -> None:
        """Fill ``[start:]`` of the output arrays in one table gather."""
        n = len(tputs)
        use_table = (
            self.table is not None
            and deadline_at - self.clock() >= self.degradation.tier1_budget
        )
        if not use_table:
            for i in range(start, n):
                rungs[i] = self._floor_from_columns(bufs[i], prevs[i])
            tiers[start:] = TIER_RULE
            self.counters.record_batch(TIER_RULE, n - start)
            return
        looked = self.table.lookup_batch(
            tputs[start:], bufs[start:], prevs[start:]
        )
        levels = self.ladder.levels
        valid_prev = (prevs[start:] >= 0) & (prevs[start:] < levels)
        hold = (looked < 0) & valid_prev
        floor = (looked < 0) & ~valid_prev
        looked = np.where(hold, prevs[start:], looked)
        floor_indices = np.nonzero(floor)[0]
        for j in floor_indices:
            looked[j] = self._floor_from_columns(
                bufs[start + j], prevs[start + j]
            )
        rungs[start:] = looked
        tiers[start:] = np.where(floor, TIER_RULE, TIER_TABLE)
        deferred[start:] = hold
        floor_count = int(floor.sum())
        self.counters.record_batch(
            TIER_TABLE, n - start - floor_count,
            deferred=int(hold.sum()),
        )
        self.counters.record_batch(TIER_RULE, floor_count)

    def _obs_from_columns(
        self, tput: float, buffer_level: float, prev: int
    ) -> PlayerObservation:
        """A minimal observation carrying the three column values."""
        now = self.clock()
        if np.isfinite(tput) and tput > 0:
            history: Tuple[ThroughputSample, ...] = (
                ThroughputSample(
                    start=now, duration=1.0, size=float(tput),
                    throughput=float(tput),
                ),
            )
        else:
            history = ()
        if not np.isfinite(buffer_level):
            buffer_level = 0.0
        levels = self.ladder.levels
        return PlayerObservation(
            wall_time=now,
            segment_index=0,
            buffer_level=float(min(max(buffer_level, 0.0), self.max_buffer)),
            max_buffer=self.max_buffer,
            previous_quality=int(prev) if 0 <= prev < levels else None,
            ladder=self.ladder,
            history=history,
        )

    def _floor_from_columns(self, buffer_level: float, prev: int) -> int:
        return self.degradation.floor_quality(
            self._obs_from_columns(-1.0, buffer_level, prev)
        )

    def _floor_decision(
        self,
        session_id: str,
        obs: PlayerObservation,
        started: float,
        shed: bool,
    ) -> Decision:
        """A tier-2 answer built outside the counter/ring bookkeeping
        (the batch paths account in bulk)."""
        return Decision(
            session_id=session_id,
            quality=self.degradation.floor_quality(obs),
            tier=TIER_RULE,
            shed=shed,
            latency=self.clock() - started,
        )

    def _finish(
        self,
        session_id: str,
        tier: TierDecision,
        started: float,
        shed: bool,
        sanitized: bool,
    ) -> Decision:
        latency = self.clock() - started
        self.counters.record_tier(tier)
        self.counters.set_sessions(len(self.sessions))
        self.latencies.record(latency)
        if not shed:
            self.gate.observe(latency)
        return Decision(
            session_id=session_id,
            quality=tier.quality,
            tier=tier.tier,
            deferred=tier.deferred,
            solver_error=tier.solver_error,
            overran=tier.overran,
            shed=shed,
            sanitized=sanitized,
            latency=latency,
        )

    # ------------------------------------------------------------------
    @property
    def table_version(self) -> int:
        """The live decision table's version (``0`` with tier 1 disabled)."""
        return self.table.version if self.table is not None else 0

    def set_table(self, table: Optional[DecisionTable]) -> int:
        """Swap the tier-1 decision table in place; returns its version.

        The table and its lookup closure are the only shared state the
        degradation ladder reads, and rebinding two attributes is atomic
        enough under the GIL: a request in flight keeps using whichever
        table object it already resolved, then the next request sees the
        new one — there is no partially-swapped state.  ``None`` disables
        tier 1 (the ladder jumps from the solver to the floor rule).
        """
        self.table = table
        self.degradation.tier1 = (
            table.lookup_observation if table is not None else None
        )
        return self.table_version

    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Counter snapshot with session-table figures folded in."""
        return dataclasses.replace(
            self.counters.snapshot(),
            sessions_created=self.sessions.created,
            sessions_evicted=self.sessions.evicted,
            sessions_active=len(self.sessions),
            max_sessions_seen=self.sessions.max_size_seen,
        )

    def health(self) -> HealthSnapshot:
        """Liveness/readiness/latency snapshot for pollers and artifacts."""
        return build_snapshot(
            self.stats(),
            self.breaker,
            self.latencies,
            self.deadline,
            table_version=self.table_version,
            admission=self.gate.snapshot(),
            batching=self.batches.snapshot(),
        )
