"""Circuit breaker guarding the tier-0 solver of the decision service.

A long-lived service cannot let a misbehaving optimizer poison every
request: once the solver starts raising or blowing its deadline budget, the
cheapest defense is to stop calling it for a while and serve degraded
answers instead.  This module implements the classic closed → open →
half-open state machine (Nygard's *Release It!* pattern, as deployed in
front of every production ABR decision path):

* **closed** — requests flow to the solver; ``failure_threshold``
  *consecutive* failures (exceptions or deadline overruns) trip the
  breaker;
* **open** — the solver is not called at all (the degradation ladder is
  forced to tier 1+); after ``cooldown`` seconds the next permission check
  moves the breaker to half-open;
* **half-open** — a limited number of probe requests reach the solver;
  ``half_open_successes`` consecutive successes close the breaker, any
  failure re-opens it and restarts the cooldown.  At most
  ``half_open_successes`` probes may be *in flight* at once: when N
  threads race :meth:`CircuitBreaker.allow` at the open → half-open
  edge, exactly that many win the probe slots and everyone else keeps
  degrading until the probes report back.

The clock is injectable so tests (and the chaos-soak harness) can drive
transitions deterministically, and every transition is recorded so the
health snapshot can prove a full open → half-open → closed cycle happened.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Callable, List, Optional, Tuple

__all__ = ["BreakerOpenError", "BreakerState", "CircuitBreaker"]


class BreakerState(str, enum.Enum):
    """The three classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class BreakerOpenError(RuntimeError):
    """Raised by :meth:`CircuitBreaker.guard` when the breaker is open."""


class CircuitBreaker:
    """A thread-safe closed/open/half-open circuit breaker.

    Args:
        failure_threshold: consecutive failures that trip a closed breaker.
        cooldown: seconds an open breaker waits before half-opening.
        half_open_successes: consecutive successful probes required to
            close a half-open breaker.
        clock: monotonic time source; defaults to :func:`time.monotonic`.

    Raises:
        ValueError: on non-positive thresholds or cooldown.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 1.0,
        half_open_successes: int = 1,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        if half_open_successes < 1:
            raise ValueError("half_open_successes must be at least 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.half_open_successes = half_open_successes
        self.clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._probes_in_flight = 0
        self._opened_at = 0.0
        #: (from, to) state transitions in order, for the health snapshot
        self.transitions: List[Tuple[str, str]] = []
        self.times_opened = 0
        self.failures_recorded = 0

    # ------------------------------------------------------------------
    def _move(self, new_state: BreakerState) -> None:
        """Record and apply a transition (lock held by the caller)."""
        self.transitions.append((self._state.value, new_state.value))
        self._state = new_state

    @property
    def state(self) -> BreakerState:
        """Current state (open → half-open promotion happens in ``allow``)."""
        with self._lock:
            return self._state

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether a request may reach the guarded solver right now.

        An open breaker whose cooldown has elapsed transitions to
        half-open here (permission checks are the only place the service
        observes time passing while the solver is idle).  Half-open
        grants at most ``half_open_successes`` concurrent probe slots;
        every granted slot must be paid back with exactly one
        :meth:`record_success` or :meth:`record_failure` (the degradation
        ladder guarantees this on every code path).
        """
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.OPEN:
                if self.clock() - self._opened_at >= self.cooldown:
                    self._probe_successes = 0
                    self._probes_in_flight = 1
                    self._move(BreakerState.HALF_OPEN)
                    return True
                return False
            # half-open: only the limited probe slots may flow
            if self._probes_in_flight < self.half_open_successes:
                self._probes_in_flight += 1
                return True
            return False

    def record_success(self) -> None:
        """Note a successful solver call."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state is BreakerState.HALF_OPEN:
                if self._probes_in_flight > 0:
                    self._probes_in_flight -= 1
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_successes:
                    self._move(BreakerState.CLOSED)

    def record_failure(self) -> None:
        """Note a solver exception or deadline overrun."""
        with self._lock:
            self.failures_recorded += 1
            if self._state is BreakerState.HALF_OPEN:
                self._trip()
                return
            self._consecutive_failures += 1
            if (
                self._state is BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip()

    def _trip(self) -> None:
        """Open the breaker and start the cooldown (lock held)."""
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self._opened_at = self.clock()
        self.times_opened += 1
        self._move(BreakerState.OPEN)

    # ------------------------------------------------------------------
    def full_cycles(self) -> int:
        """Completed open → half-open → closed cycles, from the log."""
        cycles = 0
        stage = 0  # 0: want open, 1: want half-open, 2: want closed
        for _, to in self.transitions:
            if stage == 0 and to == BreakerState.OPEN.value:
                stage = 1
            elif stage == 1 and to == BreakerState.HALF_OPEN.value:
                stage = 2
            elif stage == 2:
                if to == BreakerState.CLOSED.value:
                    cycles += 1
                    stage = 0
                elif to == BreakerState.OPEN.value:
                    stage = 1  # probe failed; cycle restarts
        return cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CircuitBreaker {self._state.value} "
            f"opened={self.times_opened} failures={self.failures_recorded}>"
        )
