"""Chaos-soak harness for the decision service.

``repro soak`` drives thousands of short synthetic sessions through the
serving layer from a pool of worker threads while injecting faults:

* **observation faults** — each session carries a seeded PR-1
  :class:`~repro.faults.plan.FaultPlan`; a fault on a segment corrupts the
  throughput sample the service sees (NaN/inf/zero/negative), exercising
  the sanitizer exactly like a hostile client SDK would;
* **solver faults** (single-process mode) — a seeded :class:`ChaosSolver`
  wraps every session's tier-0 solver with random crashes, random
  over-deadline sleeps, random NaN answers, and one *deterministic* burst
  of consecutive crashes sized to trip the circuit breaker, so every soak
  provably exercises the full open → half-open → closed cycle;
* **process faults** (sharded mode, ``shards > 0``) — the soak SIGKILLs a
  live shard worker mid-run and requires the fleet to re-home the dead
  shard's sessions onto survivors, restart the worker, and keep every
  answer inside the serving contract across the kill/re-home boundary.

Throughout, the harness checks the service's externally observable
invariants (every answer an in-range rung; latency bounded; session table
capped; overruns accounted to the breaker; breaker cycled) and reports
violations — a clean soak is the acceptance gate for the serving layer.
"""

from __future__ import annotations

import math
import os
import random
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..abr.base import PlayerObservation
from ..core.controller import SodaController
from ..core.lookup import DecisionTable
from ..faults.plan import FaultPlan
from ..prediction.base import ThroughputSample
from ..sim.video import BitrateLadder
from .degrade import TIER_SOLVER
from .health import HealthSnapshot
from .service import DecisionService, Tier0
from .shard import FleetHealth, RolloutReport, ShardedDecisionService

__all__ = ["ChaosSolver", "SoakConfig", "SoakReport", "run_soak"]

#: scheduler headroom granted to non-solver answers before a latency is
#: called a violation: threads on a busy box can sit runnable for tens of
#: milliseconds through no fault of the service.  The *semantic* deadline
#: contract is verified deterministically (fake clock) in the unit tests.
SCHEDULING_SLACK = 0.25


class ChaosSolver:
    """A misbehaving wrapper around one session's tier-0 solver.

    All randomness comes from a shared seeded generator and the burst
    schedule from a shared decision counter, so a soak with a fixed seed
    is reproducible call-for-call under the same thread interleaving.

    Args:
        inner: the real per-session solver.
        rng: shared seeded generator (guarded by ``lock``).
        lock: guards ``rng`` and ``counter`` across worker threads.
        counter: shared mutable call counter (single-element list).
        crash_rate: probability a call raises.
        slow_rate: probability a call sleeps past the deadline first.
        nan_rate: probability a call answers NaN (an unusable rung).
        slow_seconds: sleep length of a slow call.
        burst: predicate on the global call index; while it holds, the
            call raises unconditionally.  The soak uses "index past the
            burst start *and* the breaker has not opened yet", which
            guarantees exactly one deterministic trip per burst no
            matter how calls interleave.
    """

    def __init__(
        self,
        inner: Tier0,
        rng: random.Random,
        lock: threading.Lock,
        counter: List[int],
        crash_rate: float,
        slow_rate: float,
        nan_rate: float,
        slow_seconds: float,
        burst: Callable[[int], bool],
    ) -> None:
        self.inner = inner
        self.rng = rng
        self.lock = lock
        self.counter = counter
        self.crash_rate = crash_rate
        self.slow_rate = slow_rate
        self.nan_rate = nan_rate
        self.slow_seconds = slow_seconds
        self.burst = burst

    def __call__(self, obs: PlayerObservation) -> Optional[float]:
        with self.lock:
            index = self.counter[0]
            self.counter[0] += 1
            roll = self.rng.random()
        if self.burst(index):
            raise RuntimeError(f"chaos: burst crash at call {index}")
        if roll < self.crash_rate:
            raise RuntimeError(f"chaos: random crash at call {index}")
        if roll < self.crash_rate + self.slow_rate:
            time.sleep(self.slow_seconds)
            return self.inner(obs)
        if roll < self.crash_rate + self.slow_rate + self.nan_rate:
            return float("nan")
        return self.inner(obs)


@dataclass(frozen=True)
class SoakConfig:
    """Tuning of one chaos soak.

    The defaults make the required outcomes deterministic: the crash
    burst trips the breaker; the short cooldown lets it half-open and
    close while traffic still flows (tier-1 answers while open); slow
    solver calls hold admission slots long enough that other workers
    shed to tier 2.

    Attributes:
        sessions: synthetic sessions to run.
        segments_per_session: decisions per session.
        threads: worker threads driving sessions concurrently.
        seed: master seed for traffic, faults, and chaos.
        chaos: inject faults and require the chaos outcomes (breaker
            cycle, tier-1/tier-2 degradations).  ``False`` turns the
            harness into a clean steady-workload driver (``repro
            serve``): no solver faults, no observation corruption, and
            only the universal invariants are checked.
        deadline: per-decision budget handed to the service, seconds.
        think_seconds: mean per-segment pause of a client between
            requests (uniform on ``[0, 2 * think_seconds]``).  Zero
            turns the workload into a pure stampede, which sheds nearly
            everything and starves the solver tiers.
        max_in_flight: admission slots (small, to provoke shedding).
        max_sessions: session-table cap (smaller than ``sessions`` so
            LRU eviction is exercised).
        table_points: decision-table grid per axis (small: soaks build
            fast and tier-1 behaviour is identical at any grid size).
        fault_intensity: PR-1 fault-plan intensity for observation
            corruption, 0..1.
        crash_rate: random tier-0 crash probability.
        slow_rate: random tier-0 slow-call probability.
        nan_rate: random tier-0 NaN-answer probability.
        slow_seconds: slow-call sleep; must exceed ``deadline`` to count
            as an overrun.
        burst_at: global solver-call index where the deterministic crash
            burst starts; it lasts until the breaker opens.
        breaker_threshold: consecutive failures that trip the breaker.
        breaker_cooldown: seconds before an open breaker half-opens.
        shards: ``0`` soaks one in-process service; ``> 0`` soaks a
            :class:`~repro.service.shard.ShardedDecisionService` with
            that many worker processes.  Sharded chaos swaps solver
            faults for process faults: a worker is SIGKILLed mid-run.
        kill_at: front-end decision count at which the sharded soak
            kills a live worker; defaults to half the expected total.
        rollout: run the *rollout* chaos soak instead (needs
            ``shards >= 2``): mid-run a poisoned table (format-valid,
            every cell defer) is rolled out while a baseline worker is
            SIGKILLed during the canary's probation; the canary
            floor-rate spike must trigger automatic rollback, the fleet
            must converge back to the old version, and post-rollback
            table cells must be identical to pre-rollout.
        rollout_at: front-end decision count at which the rollout
            starts; defaults to a third of the expected total.
        rollout_probation: canary probation window, seconds.
        tier0_chunk: sessions per batched tier-0 solver call inside the
            service's ``decide_many`` path (``1`` disables cross-session
            batching).
        batch_window: clean-serve only — when positive, client workers
            submit through a shared
            :class:`~repro.service.batcher.MicroBatcher` with this
            collection window (seconds) instead of calling ``decide``
            directly, so the batched tier-0 kernel sees real occupancy.
    """

    sessions: int = 200
    segments_per_session: int = 30
    threads: int = 8
    seed: int = 0
    chaos: bool = True
    deadline: float = 0.05
    think_seconds: float = 0.001
    max_in_flight: int = 4
    max_sessions: int = 64
    table_points: int = 12
    fault_intensity: float = 0.3
    crash_rate: float = 0.02
    slow_rate: float = 0.02
    nan_rate: float = 0.01
    slow_seconds: float = 0.08
    burst_at: int = 200
    breaker_threshold: int = 5
    breaker_cooldown: float = 0.3
    shards: int = 0
    kill_at: Optional[int] = None
    rollout: bool = False
    rollout_at: Optional[int] = None
    rollout_probation: float = 0.4
    tier0_chunk: int = 16
    batch_window: float = 0.0


@dataclass
class SoakReport:
    """Everything a soak run observed.

    Attributes:
        config: the configuration that produced the run.
        decisions: total ``decide`` calls answered.
        elapsed: wall seconds the soak took.
        violations: invariant violations (empty means the soak passed).
        snapshot: the service's final health snapshot (single-process
            soaks; ``None`` for sharded runs).
        fleet: the final fleet health (sharded soaks; ``None`` for
            single-process runs).
        rollout_report: the rollout's outcome (rollout soaks only).
    """

    config: SoakConfig
    decisions: int
    elapsed: float
    violations: List[str] = field(default_factory=list)
    snapshot: Optional[HealthSnapshot] = None
    fleet: Optional[FleetHealth] = None
    rollout_report: Optional[RolloutReport] = None

    @property
    def passed(self) -> bool:
        return not self.violations

    def decisions_per_second(self) -> float:
        return self.decisions / self.elapsed if self.elapsed > 0 else 0.0


def _session_worker(
    service,
    cfg: SoakConfig,
    queue: List[int],
    queue_lock: threading.Lock,
    violations: List[str],
    violations_lock: threading.Lock,
    latency_slack: float = SCHEDULING_SLACK,
    batcher=None,
) -> None:
    """Pull session indices off the queue and stream each one.

    ``service`` is anything with ``ladder`` / ``max_buffer`` / ``decide``
    — the in-process :class:`DecisionService` or the sharded front end
    (which needs a larger ``latency_slack``: a request that catches a
    worker dying pays up to two pipe round trips before its answer).
    With a ``batcher``, requests go through the shared
    :class:`~repro.service.batcher.MicroBatcher` instead: the worker
    offers its request, then polls the clock edge until its handle
    resolves — whichever worker's poll crosses a trigger flushes the
    whole collected batch, so concurrent workers batch each other.
    """
    levels = service.ladder.levels
    while True:
        with queue_lock:
            if not queue:
                return
            index = queue.pop()
        session_id = f"soak-{index}"
        rng = random.Random((cfg.seed << 20) ^ index)
        intensity = cfg.fault_intensity if cfg.chaos else 0.0
        plan = FaultPlan.of_intensity(intensity, seed=cfg.seed).fork(index)
        bad: List[str] = []

        history: List[ThroughputSample] = []
        prev: Optional[int] = None
        buffer_level = 0.0
        wall = 0.0
        for segment in range(cfg.segments_per_session):
            if cfg.think_seconds > 0:
                time.sleep(rng.uniform(0.0, 2.0 * cfg.think_seconds))
            # Synthesize the download the client just finished, letting
            # the fault plan corrupt the throughput the service will see.
            true_tput = max(0.3, rng.lognormvariate(1.0, 0.6))
            fault = plan.on_attempt(wall, segment, 1, prev or 0)
            seen_tput = true_tput
            if fault.corrupt_throughput is not None:
                seen_tput = fault.corrupt_throughput
            duration = 0.4 + rng.random() * 1.2
            history.append(
                ThroughputSample(
                    start=wall,
                    duration=duration,
                    size=true_tput * duration,
                    throughput=seen_tput,
                )
            )
            if len(history) > 12:
                history.pop(0)
            wall += duration
            buffer_level = min(
                service.max_buffer,
                max(0.0, buffer_level + rng.uniform(-2.0, 3.0)),
            )

            obs = PlayerObservation(
                wall_time=wall,
                segment_index=segment,
                buffer_level=buffer_level,
                max_buffer=service.max_buffer,
                previous_quality=prev,
                ladder=service.ladder,
                history=tuple(history),
            )
            if batcher is not None:
                pending = batcher.offer(session_id, obs)
                while not pending.done:
                    if not batcher.poll():
                        time.sleep(batcher.window / 4)
                decision = pending.decision
            else:
                decision = service.decide(session_id, obs)

            # ---- per-call invariants --------------------------------
            if not (
                isinstance(decision.quality, int)
                and 0 <= decision.quality < levels
            ):
                bad.append(
                    f"{session_id}#{segment}: rung {decision.quality!r} "
                    f"outside [0, {levels})"
                )
            if not math.isfinite(decision.latency) or decision.latency < 0:
                bad.append(
                    f"{session_id}#{segment}: non-finite latency "
                    f"{decision.latency!r}"
                )
            elif decision.tier != TIER_SOLVER and not decision.overran:
                # Degraded answers must land within the budget (plus
                # scheduler slack); only a tier-0 solve may overrun, and
                # each overrun is charged to the breaker (checked
                # globally after the run).
                if decision.latency > cfg.deadline + latency_slack:
                    bad.append(
                        f"{session_id}#{segment}: tier-{decision.tier} "
                        f"latency {decision.latency * 1e3:.1f} ms exceeds "
                        f"deadline {cfg.deadline * 1e3:.0f} ms + slack"
                    )
            prev = decision.quality
        if bad:
            with violations_lock:
                violations.extend(bad)


def run_soak(
    cfg: SoakConfig,
    ladder: Optional[BitrateLadder] = None,
    max_buffer: float = 20.0,
    progress: Optional[Callable[[str], None]] = None,
) -> SoakReport:
    """Run one chaos soak and collect invariant violations.

    Args:
        cfg: soak tuning.
        ladder: encoding ladder; defaults to the 6-rung YouTube 4K
            ladder the benches use.
        max_buffer: client buffer capacity, seconds.
        progress: optional line sink for phase messages.

    Returns:
        A :class:`SoakReport`; ``report.passed`` is the gate.
    """
    if ladder is None:
        from ..sim.video import youtube_4k_ladder

        ladder = youtube_4k_ladder()
    say = progress or (lambda line: None)

    if cfg.rollout:
        if cfg.shards < 2:
            raise ValueError("the rollout soak needs shards >= 2")
        return _run_rollout_soak(cfg, ladder, max_buffer, say)
    if cfg.shards > 0:
        return _run_shard_soak(cfg, ladder, max_buffer, say)

    from .breaker import CircuitBreaker

    breaker = CircuitBreaker(
        failure_threshold=cfg.breaker_threshold,
        cooldown=cfg.breaker_cooldown,
    )
    chaos_lock = threading.Lock()
    chaos_rng = random.Random(cfg.seed)
    chaos_counter = [0]

    def burst(index: int) -> bool:
        # Crash every solver call from burst_at until the breaker trips:
        # one guaranteed full trip regardless of thread interleaving, and
        # recovery probes see healthy calls again immediately after.
        return index >= cfg.burst_at and breaker.times_opened == 0

    def chaos_factory(session_id: str, controller: SodaController) -> Tier0:
        return ChaosSolver(
            controller.select_quality,
            rng=chaos_rng,
            lock=chaos_lock,
            counter=chaos_counter,
            crash_rate=cfg.crash_rate,
            slow_rate=cfg.slow_rate,
            nan_rate=cfg.nan_rate,
            slow_seconds=cfg.slow_seconds,
            burst=burst,
        )

    # A clean serve keeps the default tier-0 path: the service stays
    # batchable (a custom factory disables cross-session batching).
    tier0_factory = chaos_factory if cfg.chaos else None

    say(
        f"building service (table {cfg.table_points}x{cfg.table_points}, "
        f"deadline {cfg.deadline * 1e3:.0f} ms) ..."
    )
    service = DecisionService(
        ladder,
        max_buffer,
        deadline=cfg.deadline,
        max_in_flight=cfg.max_in_flight,
        max_sessions=cfg.max_sessions,
        table_points=cfg.table_points,
        breaker=breaker,
        tier0_factory=tier0_factory,
        tier0_chunk=cfg.tier0_chunk,
    )
    batcher = None
    if cfg.batch_window > 0 and not cfg.chaos:
        from .batcher import MicroBatcher

        batcher = MicroBatcher(
            service, window=cfg.batch_window, max_batch=cfg.tier0_chunk
        )

    queue = list(range(cfg.sessions))
    queue_lock = threading.Lock()
    violations: List[str] = []
    violations_lock = threading.Lock()

    say(
        f"driving {cfg.sessions} sessions x {cfg.segments_per_session} "
        f"segments on {cfg.threads} threads ..."
    )
    started = time.perf_counter()
    workers = [
        threading.Thread(
            target=_session_worker,
            args=(
                service, cfg, queue, queue_lock, violations, violations_lock,
            ),
            kwargs={"batcher": batcher},
            name=f"soak-worker-{i}",
            daemon=True,
        )
        for i in range(cfg.threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    if batcher is not None:
        batcher.close()

    # ---- drain phase: let the breaker finish its recovery cycle ------
    # Short soaks can outrun the cooldown (the burst trips the breaker
    # but traffic ends before it may half-open).  Trickle probe traffic
    # until the cycle completes; the burst is over, so probes succeed.
    drained = 0
    if service.breaker.times_opened > 0:
        say("draining until the breaker closes ...")
        drain_deadline = time.perf_counter() + 4 * cfg.breaker_cooldown + 2.0
        probe_obs = PlayerObservation(
            wall_time=0.0,
            segment_index=0,
            buffer_level=max_buffer / 2,
            max_buffer=max_buffer,
            previous_quality=None,
            ladder=ladder,
            history=(),
        )
        while (
            service.breaker.full_cycles() < 1
            and time.perf_counter() < drain_deadline
        ):
            service.decide("soak-drain", probe_obs)
            drained += 1
            time.sleep(cfg.breaker_cooldown / 10)

    # ---- deterministic shed probe ------------------------------------
    # Shedding normally needs genuine slot contention (slow solver calls
    # pinning admission slots while other threads arrive), which thread
    # scheduling does not guarantee on every box.  If the run produced no
    # shed, manufacture one: hold every admission slot and issue a single
    # decision, which must be refused a slot and answered from the tier-2
    # floor.  This makes the "chaos exercises shedding" outcome a
    # deterministic property of the harness, like the breaker burst.
    if cfg.chaos and service.stats().tier2_decisions == 0:
        say("forcing one load-shed probe ...")
        held = 0
        while service.gate.try_acquire():
            held += 1
        try:
            shed_obs = PlayerObservation(
                wall_time=0.0,
                segment_index=0,
                buffer_level=max_buffer / 2,
                max_buffer=max_buffer,
                previous_quality=None,
                ladder=ladder,
                history=(),
            )
            probe = service.decide("soak-shed-probe", shed_obs)
            drained += 1
            if not probe.shed:
                violations.append(
                    "shed probe was admitted with every slot held"
                )
        finally:
            for _ in range(held):
                service.gate.release()
    elapsed = time.perf_counter() - started

    stats = service.stats()

    # ---- global invariants -------------------------------------------
    if stats.max_sessions_seen > cfg.max_sessions:
        violations.append(
            f"session table high-water {stats.max_sessions_seen} exceeds "
            f"cap {cfg.max_sessions}"
        )
    if stats.deadline_overruns > service.breaker.failures_recorded:
        violations.append(
            f"{stats.deadline_overruns} overruns but only "
            f"{service.breaker.failures_recorded} breaker failures recorded"
        )
    expected = cfg.sessions * cfg.segments_per_session + drained
    if stats.decisions != expected:
        violations.append(
            f"answered {stats.decisions} decisions, expected {expected}"
        )
    if cfg.chaos:
        if service.breaker.full_cycles() < 1:
            violations.append(
                "breaker never completed an open -> half-open -> closed cycle"
            )
        if stats.tier1_decisions == 0:
            violations.append("chaos produced no tier-1 degradations")
        if stats.tier2_decisions == 0:
            violations.append("chaos produced no tier-2 degradations")

    snapshot = service.health()
    return SoakReport(
        config=cfg,
        decisions=stats.decisions,
        elapsed=elapsed,
        violations=violations,
        snapshot=snapshot,
    )


# ----------------------------------------------------------------------
def _run_shard_soak(
    cfg: SoakConfig,
    ladder: BitrateLadder,
    max_buffer: float,
    say: Callable[[str], None],
) -> SoakReport:
    """Soak a sharded fleet, SIGKILLing one worker mid-run.

    Chaos here is process-level: observation faults still flow through
    the fault plans, but solver chaos stays off (each worker owns its
    breaker, so the deterministic burst guarantee does not compose) and
    the headline fault is a worker killed -9 while serving.  The run
    passes when every answer stayed inside the serving contract across
    the kill, at least one session was re-homed onto a survivor, and the
    supervisor restarted the dead slot.
    """
    say(
        f"building {cfg.shards}-shard fleet (table "
        f"{cfg.table_points}x{cfg.table_points}, deadline "
        f"{cfg.deadline * 1e3:.0f} ms) ..."
    )
    service = ShardedDecisionService(
        ladder,
        max_buffer,
        shards=cfg.shards,
        deadline=cfg.deadline,
        max_in_flight=max(cfg.max_in_flight, 8),
        max_sessions=cfg.max_sessions,
        table_points=cfg.table_points,
        heartbeat_interval=0.05,
        tier0_chunk=cfg.tier0_chunk,
    )
    # A request that catches the worker dying pays up to two full pipe
    # round trips (timeout on the dying shard, then the survivor).
    latency_slack = SCHEDULING_SLACK + 2.0 * (
        cfg.deadline + service.request_slack
    )

    queue = list(range(cfg.sessions))
    queue_lock = threading.Lock()
    violations: List[str] = []
    violations_lock = threading.Lock()
    expected_total = cfg.sessions * cfg.segments_per_session
    kill_at = cfg.kill_at if cfg.kill_at is not None else expected_total // 2
    killed: List[int] = []

    def killer() -> None:
        """SIGKILL one live worker once ``kill_at`` decisions are out."""
        if not cfg.chaos:
            return
        while service.decisions < kill_at:
            if service.decisions >= expected_total:
                return
            time.sleep(0.002)
        live = service.live_shards()
        if not live:
            return
        slot = live[0]
        pid = service.worker_pids()[slot]
        if pid is None:
            return
        say(f"chaos: SIGKILL shard {slot} worker (pid {pid}) ...")
        os.kill(pid, signal.SIGKILL)
        killed.append(slot)

    say(
        f"driving {cfg.sessions} sessions x {cfg.segments_per_session} "
        f"segments on {cfg.threads} threads ..."
    )
    started = time.perf_counter()
    workers = [
        threading.Thread(
            target=_session_worker,
            args=(
                service, cfg, queue, queue_lock, violations, violations_lock,
            ),
            kwargs={"latency_slack": latency_slack},
            name=f"soak-worker-{i}",
            daemon=True,
        )
        for i in range(cfg.threads)
    ]
    chaos_thread = threading.Thread(target=killer, name="soak-killer",
                                    daemon=True)
    for worker in workers:
        worker.start()
    chaos_thread.start()
    for worker in workers:
        worker.join()
    chaos_thread.join(timeout=5.0)

    probes = 0
    if cfg.chaos and killed:
        # ---- post-restart probe: the killed slot must serve again ----
        slot = killed[0]
        say(f"waiting for shard {slot} to restart ...")
        wait_until = time.perf_counter() + 10.0
        while (
            slot not in service.live_shards()
            and time.perf_counter() < wait_until
        ):
            time.sleep(0.05)
        if slot not in service.live_shards():
            violations.append(
                f"killed shard {slot} was not restarted within 10 s"
            )
        else:
            probe_obs = PlayerObservation(
                wall_time=0.0,
                segment_index=0,
                buffer_level=max_buffer / 2,
                max_buffer=max_buffer,
                previous_quality=None,
                ladder=ladder,
                history=(),
            )
            probe_sid = next(
                f"soak-probe-{k}"
                for k in range(10_000)
                if service.home_shard(f"soak-probe-{k}") == slot
            )
            probe = service.decide(probe_sid, probe_obs)
            probes += 1
            if probe.failover or probe.shard != slot:
                violations.append(
                    f"post-restart probe on shard {slot} answered from "
                    f"shard {probe.shard} (failover={probe.failover})"
                )
    elapsed = time.perf_counter() - started

    # ---- fleet invariants --------------------------------------------
    if service.decisions != expected_total + probes:
        violations.append(
            f"answered {service.decisions} decisions, expected "
            f"{expected_total + probes}"
        )
    if cfg.chaos:
        if not killed:
            violations.append(
                f"chaos never killed a worker (kill_at={kill_at})"
            )
        fleet_counters = service.supervisor.counters()
        if fleet_counters["worker_deaths"] < 1:
            violations.append("worker SIGKILL was never observed as a death")
        if fleet_counters["worker_restarts"] < 1:
            violations.append("supervisor never restarted a worker")
        if service.sessions_rehomed < 1:
            violations.append(
                "no session was re-homed off the killed shard"
            )

    fleet = service.close()
    return SoakReport(
        config=cfg,
        decisions=service.decisions,
        elapsed=elapsed,
        violations=violations,
        fleet=fleet,
    )


# ----------------------------------------------------------------------
def _run_rollout_soak(
    cfg: SoakConfig,
    ladder: BitrateLadder,
    max_buffer: float,
    say: Callable[[str], None],
) -> SoakReport:
    """Soak a fleet through a poisoned rollout plus a worker SIGKILL.

    The double fault the tentpole defends against: mid-run a *poisoned*
    decision table — format-valid, but every cell defer, so it passes
    every load-time check while being wrong everywhere — is rolled onto
    the canary shard, and while the canary sits in probation a *baseline*
    worker is SIGKILLed.  The run passes when

    * the canary's floor-rate spike (probe defer fraction against the
      live-table baseline) triggers automatic rollback,
    * the fleet converges back onto the old table version — including
      the killed worker, whose restart reloads the live (old) file,
    * every request was answered in range and inside the budget across
      both faults, and
    * the post-rollback table cells are identical to the pre-rollout
      probe on every surviving shard.
    """
    say(
        f"building {cfg.shards}-shard fleet (table "
        f"{cfg.table_points}x{cfg.table_points}, deadline "
        f"{cfg.deadline * 1e3:.0f} ms) ..."
    )
    service = ShardedDecisionService(
        ladder,
        max_buffer,
        shards=cfg.shards,
        deadline=cfg.deadline,
        max_in_flight=max(cfg.max_in_flight, 8),
        max_sessions=cfg.max_sessions,
        table_points=cfg.table_points,
        heartbeat_interval=0.05,
        tier0_chunk=cfg.tier0_chunk,
    )
    latency_slack = SCHEDULING_SLACK + 2.0 * (
        cfg.deadline + service.request_slack
    )

    probe_seed, probe_count = 17, 128
    pre_probes = {
        i: service.table_probe(i, probe_seed, probe_count)
        for i in service.live_shards()
    }

    queue = list(range(cfg.sessions))
    queue_lock = threading.Lock()
    violations: List[str] = []
    violations_lock = threading.Lock()
    expected_total = cfg.sessions * cfg.segments_per_session
    rollout_at = (
        cfg.rollout_at if cfg.rollout_at is not None else expected_total // 3
    )

    canary_holder: List[int] = []
    probation_seen = threading.Event()
    killed: List[int] = []
    rollout_result: List[RolloutReport] = []

    def monitor(stage: str, info: dict) -> None:
        if stage == "canary":
            canary_holder.append(info["shard"])
        elif stage == "probation":
            probation_seen.set()

    def roller() -> None:
        """Publish the poisoned table once enough traffic has flowed."""
        while service.decisions < rollout_at:
            if service.decisions >= expected_total:
                return
            time.sleep(0.002)
        say("chaos: rolling out a poisoned table (every cell defer) ...")
        poison = DecisionTable(
            ladder,
            max_buffer,
            throughput_points=cfg.table_points,
            buffer_points=cfg.table_points,
        )
        poison._table[:] = -1  # in-range per the format, wrong everywhere
        report = service.rollout(
            poison,
            probation=cfg.rollout_probation,
            probe_seed=probe_seed,
            probe_count=probe_count,
            monitor=monitor,
        )
        rollout_result.append(report)
        say(
            f"rollout settled: committed={report.committed} "
            f"rolled_back={report.rolled_back} ({report.reason})"
        )

    def killer() -> None:
        """SIGKILL one *baseline* worker while the canary is probing."""
        if not probation_seen.wait(timeout=30.0):
            return
        canary = canary_holder[0] if canary_holder else -1
        live = [i for i in service.live_shards() if i != canary]
        if not live:
            return
        slot = live[0]
        pid = service.worker_pids()[slot]
        if pid is None:
            return
        say(f"chaos: SIGKILL baseline shard {slot} worker (pid {pid}) ...")
        os.kill(pid, signal.SIGKILL)
        killed.append(slot)

    say(
        f"driving {cfg.sessions} sessions x {cfg.segments_per_session} "
        f"segments on {cfg.threads} threads ..."
    )
    started = time.perf_counter()
    workers = [
        threading.Thread(
            target=_session_worker,
            args=(
                service, cfg, queue, queue_lock, violations, violations_lock,
            ),
            kwargs={"latency_slack": latency_slack},
            name=f"soak-worker-{i}",
            daemon=True,
        )
        for i in range(cfg.threads)
    ]
    roller_thread = threading.Thread(target=roller, name="soak-roller",
                                     daemon=True)
    killer_thread = threading.Thread(target=killer, name="soak-killer",
                                     daemon=True)
    for worker in workers:
        worker.start()
    roller_thread.start()
    killer_thread.start()
    for worker in workers:
        worker.join()
    roller_thread.join(timeout=30.0)
    killer_thread.join(timeout=5.0)

    report = rollout_result[0] if rollout_result else None

    # ---- rollout invariants ------------------------------------------
    if report is None:
        violations.append(
            f"rollout never ran (rollout_at={rollout_at}, traffic ended "
            f"at {service.decisions})"
        )
    else:
        if report.committed:
            violations.append("poisoned table was committed fleet-wide")
        if not report.rolled_back:
            violations.append(
                f"poisoned canary did not trigger rollback ({report.reason})"
            )
        if "floor-rate" not in report.reason:
            violations.append(
                f"rollback was not triggered by the canary floor-rate "
                f"spike: {report.reason}"
            )
    if not killed:
        violations.append("chaos never killed a baseline worker")

    if killed:
        slot = killed[0]
        say(f"waiting for shard {slot} to restart ...")
        wait_until = time.perf_counter() + 10.0
        while (
            slot not in service.live_shards()
            and time.perf_counter() < wait_until
        ):
            time.sleep(0.05)
        if slot not in service.live_shards():
            violations.append(
                f"killed shard {slot} was not restarted within 10 s"
            )

    if report is not None:
        versions = service.shard_table_versions()
        stray = [
            (i, v) for i, v in enumerate(versions)
            if v != report.previous_version
        ]
        if stray:
            violations.append(
                f"fleet did not converge to v{report.previous_version} "
                f"after rollback: {stray}"
            )
        for i, pre in pre_probes.items():
            if pre is None:
                continue
            post = service.table_probe(i, probe_seed, probe_count)
            if post is None:
                violations.append(
                    f"shard {i} unreachable for the post-rollback probe"
                )
            elif post[1] != pre[1]:
                violations.append(
                    f"shard {i} post-rollback cells differ from "
                    f"pre-rollout (probe seed {probe_seed})"
                )
    elapsed = time.perf_counter() - started

    # ---- fleet invariants --------------------------------------------
    if service.decisions != expected_total:
        violations.append(
            f"answered {service.decisions} decisions, expected "
            f"{expected_total}"
        )
    fleet_counters = service.supervisor.counters()
    if killed and fleet_counters["worker_deaths"] < 1:
        violations.append("worker SIGKILL was never observed as a death")
    if killed and fleet_counters["worker_restarts"] < 1:
        violations.append("supervisor never restarted a worker")

    fleet = service.close()
    return SoakReport(
        config=cfg,
        decisions=service.decisions,
        elapsed=elapsed,
        violations=violations,
        fleet=fleet,
        rollout_report=report,
    )
