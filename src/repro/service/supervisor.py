"""Worker supervision for the sharded decision service.

A sharded front end (:mod:`repro.service.shard`) owns N forked worker
processes, and production traffic does not pause while one of them
segfaults, wedges, or gets OOM-killed.  The :class:`Supervisor` is the
part that notices and repairs:

* a **monitor thread** polls every worker — first ``Process.is_alive``
  (catches SIGKILL instantly), then a ``ping`` heartbeat over the worker's
  pipe whenever the pipe is idle (catches a wedged-but-alive worker);
* a dead worker is **restarted with bounded exponential backoff**: a
  worker that keeps dying right after spawn doubles its restart delay up
  to a cap, while a worker that served for a while restarts at the base
  delay again;
* the front end **reports request failures** (send errors, response
  timeouts) here, which kills and marks the worker dead so routing can
  re-home its sessions onto survivors immediately.

Lock discipline (deadlock-free by construction): each slot has a *pipe
lock* serializing pipe I/O, and the supervisor has one short-lived
*metadata lock*.  The metadata lock is never held while acquiring a pipe
lock; heartbeats take pipe locks non-blocking (a busy pipe means the
worker is serving a request, which is proof of life enough).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

__all__ = ["RestartPolicy", "WorkerSlot", "Supervisor"]


@dataclass(frozen=True)
class RestartPolicy:
    """Bounded exponential backoff for worker restarts.

    Attributes:
        base_delay: restart delay after a death that followed a healthy
            stretch of uptime, seconds.
        max_delay: backoff ceiling, seconds.
        min_uptime: uptime below which a death counts as "crashed right
            after spawn" and doubles the next delay.
    """

    base_delay: float = 0.1
    max_delay: float = 2.0
    min_uptime: float = 1.0

    def __post_init__(self) -> None:
        if self.base_delay <= 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 < base_delay <= max_delay")


class WorkerSlot:
    """One shard slot: a worker process, its pipe, and restart state.

    Attributes:
        index: the shard index this slot serves.
        lock: the pipe lock — held across every send/recv pair so
            request/response framing never interleaves.
        proc: the current worker process (``None`` before first spawn).
        conn: the parent end of the worker's duplex pipe.
        alive: whether the slot is believed serviceable.
        generation: how many processes have occupied this slot.
    """

    __slots__ = (
        "index", "lock", "proc", "conn", "alive", "generation",
        "spawned_at", "backoff", "next_restart_at",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.lock = threading.Lock()
        self.proc = None
        self.conn = None
        self.alive = False
        self.generation = 0
        self.spawned_at = 0.0
        self.backoff = 0.0
        self.next_restart_at = 0.0

    @property
    def pid(self) -> Optional[int]:
        proc = self.proc
        return proc.pid if proc is not None else None


class Supervisor:
    """Keeps N shard workers alive: heartbeats, kills, bounded restarts.

    Args:
        slots: number of shard slots to supervise.
        spawn: ``(slot_index, generation) -> (process, conn)`` — forks a
            fresh worker for a slot; provided by the front end.
        heartbeat_interval: monitor poll period, seconds.
        ping_timeout: how long an idle worker may take to answer a
            heartbeat before being declared wedged, seconds.
        policy: restart backoff tuning.
        clock: injectable monotonic time source.

    Raises:
        ValueError: on a non-positive slot count or interval.
    """

    def __init__(
        self,
        slots: int,
        spawn: Callable[[int, int], Tuple[object, object]],
        heartbeat_interval: float = 0.25,
        ping_timeout: float = 0.5,
        policy: Optional[RestartPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if slots < 1:
            raise ValueError("need at least one shard slot")
        if heartbeat_interval <= 0 or ping_timeout <= 0:
            raise ValueError("intervals must be positive")
        self.policy = policy or RestartPolicy()
        self.heartbeat_interval = heartbeat_interval
        self.ping_timeout = ping_timeout
        self.clock = clock or time.monotonic
        self.slots: List[WorkerSlot] = [WorkerSlot(i) for i in range(slots)]
        self._spawn = spawn
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # lifetime counters, guarded by _lock
        self.restarts = 0
        self.deaths = 0
        self.heartbeat_failures = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn every worker and start the monitor thread."""
        for slot in self.slots:
            self._respawn(slot)
        self._thread = threading.Thread(
            target=self._monitor, name="shard-supervisor", daemon=True
        )
        self._thread.start()

    def stop_monitor(self) -> None:
        """Stop the monitor thread (workers keep running for drain)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # ------------------------------------------------------------------
    def is_alive(self, index: int) -> bool:
        with self._lock:
            return self.slots[index].alive

    def live_indices(self) -> List[int]:
        """Indices of currently serviceable slots."""
        with self._lock:
            return [s.index for s in self.slots if s.alive]

    def worker_pids(self) -> List[Optional[int]]:
        """Current worker pid per slot (``None`` for a dead slot)."""
        with self._lock:
            return [s.pid if s.alive else None for s in self.slots]

    def counters(self) -> dict:
        with self._lock:
            return {
                "worker_restarts": self.restarts,
                "worker_deaths": self.deaths,
                "heartbeat_failures": self.heartbeat_failures,
            }

    # ------------------------------------------------------------------
    def report_failure(self, index: int) -> None:
        """A request to this slot failed (send error / response timeout).

        Kills the process (it may be wedged mid-request) and marks the
        slot dead so routing re-homes its sessions.  Safe to call with
        the slot's pipe lock held — only the metadata lock is taken.
        """
        slot = self.slots[index]
        self._mark_dead(slot, killed=True)

    def _mark_dead(self, slot: WorkerSlot, killed: bool) -> None:
        with self._lock:
            if not slot.alive:
                return
            slot.alive = False
            self.deaths += 1
            uptime = self.clock() - slot.spawned_at
            if uptime >= self.policy.min_uptime or slot.backoff <= 0:
                slot.backoff = self.policy.base_delay
            else:
                slot.backoff = min(
                    slot.backoff * 2.0, self.policy.max_delay
                )
            slot.next_restart_at = self.clock() + slot.backoff
        proc = slot.proc
        if killed and proc is not None and proc.is_alive():
            proc.kill()
        if proc is not None:
            proc.join(timeout=1.0)

    def _respawn(self, slot: WorkerSlot) -> None:
        """Fork a fresh worker into a (dead or new) slot."""
        with self._lock:
            generation = slot.generation + 1
        proc, conn = self._spawn(slot.index, generation)
        with self._lock:
            old_conn = slot.conn
            slot.proc = proc
            slot.conn = conn
            slot.generation = generation
            slot.spawned_at = self.clock()
            slot.alive = True
            if generation > 1:
                self.restarts += 1
        if old_conn is not None:
            try:
                old_conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass

    # ------------------------------------------------------------------
    def _monitor(self) -> None:
        """Heartbeat / restart loop, one pass per interval."""
        while not self._stop.wait(self.heartbeat_interval):
            for slot in self.slots:
                try:
                    self._check(slot)
                except Exception:  # pragma: no cover - never kill the loop
                    continue

    def _check(self, slot: WorkerSlot) -> None:
        with self._lock:
            alive = slot.alive
            due = self.clock() >= slot.next_restart_at
        if not alive:
            if due:
                # Hold the pipe lock so no request races the conn swap.
                with slot.lock:
                    self._respawn(slot)
            return
        proc = slot.proc
        if proc is not None and not proc.is_alive():
            # Died outright (SIGKILL, OOM, crash): no heartbeat needed.
            self._mark_dead(slot, killed=False)
            return
        # Pipe busy means a request is in flight — proof of life.
        if not slot.lock.acquire(blocking=False):
            return
        try:
            conn = slot.conn
            conn.send(("ping",))
            if not conn.poll(self.ping_timeout):
                raise TimeoutError("heartbeat timed out")
            conn.recv()
        except Exception:
            with self._lock:
                self.heartbeat_failures += 1
            self._mark_dead(slot, killed=True)
        finally:
            slot.lock.release()

    # ------------------------------------------------------------------
    def kill_all(self) -> None:
        """Forcibly terminate every worker (shutdown of last resort)."""
        for slot in self.slots:
            proc = slot.proc
            if proc is not None and proc.is_alive():
                proc.kill()
            if proc is not None:
                proc.join(timeout=1.0)
            with self._lock:
                slot.alive = False
