"""RL fine-tuning of a behavior-cloned policy, SABR-fashion.

The cloned policy warm-starts the tabular Q-learner of
:mod:`repro.abr.rl` (its ``q_init=`` hook) and training anchors to the
teacher: with probability ``anchor_epsilon`` per decision the agent takes
the teacher's action instead of its own, keeping the fine-tuned policy in
the neighbourhood of the demonstrated one — the ε-style stand-in for
SABR's KL regulariser that a tabular agent admits.

:func:`policy_from_q` folds the fine-tuned Q-table back into a
:class:`~repro.learn.bc.PolicyTable` so every downstream stage
(distillation, serving, evaluation) handles BC and fine-tuned policies
identically, and :func:`evaluate_stability` scores any set of learned
policies against SODA on the operational robustness sweep — QoE,
switching rate, and rebuffering per fault intensity.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..abr.base import AbrController
from ..abr.rl import QTableController, State, train_q_controller
from ..analysis.harness import standard_controllers
from ..analysis.robustness import RobustnessReport, sweep_fault_intensity
from ..sim.network import ThroughputTrace
from ..sim.profiles import EvaluationProfile
from ..sim.video import BitrateLadder
from .bc import PolicyController, PolicyTable

__all__ = ["finetune", "policy_from_q", "evaluate_stability"]


def finetune(
    policy: PolicyTable,
    traces: Sequence[ThroughputTrace],
    player_config=None,
    episodes: int = 40,
    epsilon_start: float = 0.15,
    epsilon_end: float = 0.02,
    anchor_epsilon: float = 0.3,
    bc_scale: float = 1.0,
    seed: int = 0,
    teacher: Optional[AbrController] = None,
    **agent_kwargs,
) -> QTableController:
    """Fine-tune a cloned policy in-simulator, anchored to its teacher.

    Args:
        policy: the behavior-cloned table (fixes the bucket sizes).
        traces: fine-tuning traces; episodes cycle through them.
        player_config: player parameters during fine-tuning.
        episodes: training sessions.
        epsilon_start / epsilon_end: exploration schedule — deliberately
            lower than from-scratch training, the point of BC pretraining.
        anchor_epsilon: per-decision probability of taking the teacher's
            action; 0 disables the anchor.
        bc_scale: scale of the warm-start Q-values built from the cloned
            action probabilities.
        seed: RNG seed (exploration and anchor draws).
        teacher: anchor controller; defaults to the cloned policy itself.
        **agent_kwargs: forwarded to :class:`QTableController`.

    Returns:
        The fine-tuned agent, frozen greedy (see
        :func:`repro.abr.rl.train_q_controller`).
    """
    if not 0.0 <= anchor_epsilon <= 1.0:
        raise ValueError("anchor_epsilon must be in [0, 1]")
    if teacher is None and anchor_epsilon > 0.0:
        teacher = PolicyController(policy, name=f"{policy.name}-anchor")
    agent_kwargs.setdefault("buffer_buckets", policy.buffer_buckets)
    agent_kwargs.setdefault("throughput_buckets", policy.throughput_buckets)
    agent_kwargs.setdefault("name", "ft")
    return train_q_controller(
        policy.ladder,
        traces,
        player_config=player_config,
        episodes=episodes,
        epsilon_start=epsilon_start,
        epsilon_end=epsilon_end,
        seed=seed,
        q_init=policy.to_q_table(scale=bc_scale),
        teacher=teacher,
        anchor_epsilon=anchor_epsilon,
        **agent_kwargs,
    )


def policy_from_q(
    agent: QTableController,
    ladder: BitrateLadder,
    max_buffer: float,
    name: str = "ft",
) -> PolicyTable:
    """Fold a Q-table back into a :class:`PolicyTable`.

    Only states the agent actually valued appear; everything else stays
    on the policy's safe-hold fallback.  The defer slot is pinned below
    the worst rung value so the folded policy never defers — the Q-agent
    has no defer action to have learned one.
    """
    policy = PolicyTable(
        ladder=ladder,
        max_buffer=max_buffer,
        buffer_buckets=agent.buffer_buckets,
        throughput_buckets=agent.throughput_buckets,
        name=name,
    )
    levels = ladder.levels
    states: Dict[State, np.ndarray] = {}
    for (state, action), value in agent.q_table.items():
        if not 0 <= action < levels:
            continue
        if state not in states:
            states[state] = np.zeros(levels + 1, dtype=float)
        states[state][action] = float(value)
    for state, row in states.items():
        row[levels] = float(row[:levels].min()) - 1.0
        policy.values[state] = row
    return policy


def evaluate_stability(
    policies: Mapping[str, Callable[[], AbrController]],
    traces: Sequence[ThroughputTrace],
    profile: EvaluationProfile,
    intensities: Sequence[float] = (0.0, 0.2),
    seed: int = 0,
    dataset_name: str = "dataset",
    jobs: int = 1,
    soda_name: str = "soda",
) -> Tuple[RobustnessReport, Dict[str, dict]]:
    """Score learned policies against SODA on the robustness sweep.

    Every policy faces the identical per-(intensity, session) fault
    streams SODA faces (the sweep's seeding contract), so the comparison
    isolates the controller.

    Returns:
        ``(report, summary)`` — the full sweep report plus, per policy, a
        dict with its fault-free and max-intensity QoE / switching rate /
        rebuffer ratio and the deltas against SODA (positive
        ``qoe_delta`` means the policy beats SODA; ``switch_delta`` and
        ``rebuffer_delta`` are policy minus SODA, lower is better).
    """
    factories: Dict[str, Callable[[], AbrController]] = dict(
        standard_controllers()
    )
    factories = {soda_name: factories[soda_name]}
    for name, factory in policies.items():
        if name == soda_name:
            raise ValueError(f"policy name {name!r} collides with the teacher")
        factories[name] = factory
    report = sweep_fault_intensity(
        traces,
        profile,
        factories=factories,
        intensities=intensities,
        seed=seed,
        dataset_name=dataset_name,
        jobs=jobs,
    )
    soda_curve = report.curve(soda_name)
    summary: Dict[str, dict] = {}
    for name in factories:
        curve = report.curve(name)
        first, last = curve.points[0], curve.points[-1]
        soda_last = soda_curve.points[-1]
        summary[name] = {
            "qoe_clean": first.qoe_mean,
            "qoe_faulted": last.qoe_mean,
            "switching_rate": last.switching_rate,
            "rebuffer_ratio": last.rebuffer_ratio,
            "qoe_delta": last.qoe_mean - soda_last.qoe_mean,
            "switch_delta": last.switching_rate - soda_last.switching_rate,
            "rebuffer_delta": last.rebuffer_ratio - soda_last.rebuffer_ratio,
        }
    return report, summary
