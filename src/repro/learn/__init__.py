"""Offline learning pipeline: journals → BC → fine-tune → distill → serve.

The paper's CausalSimRL baseline is substituted by a tabular agent
(:mod:`repro.abr.rl`); this package closes the loop from recorded SODA
decisions back to a servable policy, SABR-fashion:

1. :mod:`~repro.learn.dataset` — extract per-decision demonstrations from
   run journals written by ``repro compare --log-decisions``.
2. :mod:`~repro.learn.bc` — behavior-clone a greedy policy table from the
   demonstration counts (Laplace-smoothed) with a state-coverage report.
3. :mod:`~repro.learn.finetune` — warm-start the tabular Q-learner from
   the cloned table and fine-tune in-simulator with an ε-style anchor to
   the teacher, then evaluate stability vs SODA on the robustness sweep.
4. :mod:`~repro.learn.distill` — export any policy as a dense int8
   :class:`~repro.core.lookup.DecisionTable` grid, publishable with
   :class:`~repro.core.lookup.TablePublisher` and canary-rolled-out via
   :meth:`~repro.service.shard.ShardedDecisionService.rollout`.

The ``repro learn extract|bc|finetune|distill|eval`` CLI ties the stages
together; DESIGN.md §15 documents the state-space contract.
"""

from .bc import CoverageReport, PolicyController, PolicyTable, fit_bc
from .dataset import (
    DemoDataset,
    ExtractReport,
    extract_demonstrations,
    load_demonstrations,
)
from .distill import TableController, distill_policy
from .finetune import evaluate_stability, finetune, policy_from_q

__all__ = [
    "CoverageReport",
    "PolicyController",
    "PolicyTable",
    "fit_bc",
    "DemoDataset",
    "ExtractReport",
    "extract_demonstrations",
    "load_demonstrations",
    "TableController",
    "distill_policy",
    "evaluate_stability",
    "finetune",
    "policy_from_q",
]
