"""Behavior cloning: a greedy policy table from demonstration counts.

The cloned policy is a sparse table over the discretised state space of
:func:`repro.abr.rl.encode_state`: for every *visited* state it stores a
Laplace-smoothed action distribution (ladder rungs plus a trailing defer
slot) and acts greedily.  Unvisited states fall back to holding the
previous rung (rung 0 at session start) — the same safe-hold rule the
degradation ladder applies to tier-1 defers — and the
:class:`CoverageReport` says how often that fallback will fire.

:class:`PolicyController` serves any policy table as an ABR controller,
so cloned and fine-tuned policies run through the very same simulator,
robustness sweep, and QoE pipeline as every hand-written controller.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..abr.base import AbrController, PlayerObservation
from ..abr.rl import State, encode_state
from ..sim.video import BitrateLadder
from .dataset import DemoDataset

__all__ = ["CoverageReport", "PolicyTable", "PolicyController", "fit_bc"]


@dataclass(frozen=True)
class CoverageReport:
    """How much of the state space the demonstrations visited.

    Attributes:
        total_states: full discretised state-space size.
        visited_states: states with at least one demonstration.
        sessions: demonstration sessions consumed.
        decisions: demonstration rows consumed.
        defer_fraction: fraction of rows where the teacher deferred.
        action_histogram: row count per action (defer slot last).
    """

    total_states: int
    visited_states: int
    sessions: int
    decisions: int
    defer_fraction: float
    action_histogram: Tuple[int, ...]

    @property
    def coverage(self) -> float:
        """Visited fraction of the state space, in [0, 1]."""
        if self.total_states == 0:
            return 0.0
        return self.visited_states / self.total_states

    def to_dict(self) -> dict:
        return {
            "total_states": self.total_states,
            "visited_states": self.visited_states,
            "coverage": self.coverage,
            "sessions": self.sessions,
            "decisions": self.decisions,
            "defer_fraction": self.defer_fraction,
            "action_histogram": list(self.action_histogram),
        }

    def render(self) -> str:
        return (
            f"coverage: {self.visited_states}/{self.total_states} states "
            f"({self.coverage:.1%}) from {self.decisions} decisions over "
            f"{self.sessions} session(s); defer rate "
            f"{self.defer_fraction:.1%}"
        )


@dataclass
class PolicyTable:
    """A sparse greedy policy over the shared discretised state space.

    ``values[state]`` is a float array of length ``ladder.levels + 1``
    (action scores, defer slot last); greedy ties break toward the lowest
    rung, and a rung always beats the defer slot on an exact tie —
    matching the Q-agent's ``(value, -action)`` rule.
    """

    ladder: BitrateLadder
    max_buffer: float
    buffer_buckets: int
    throughput_buckets: int
    values: Dict[State, np.ndarray] = field(default_factory=dict)
    name: str = "bc"

    def scores(self, state: State) -> Optional[np.ndarray]:
        """Action scores for a state, or ``None`` when unvisited."""
        return self.values.get(state)

    def decide(self, state: State, prev: Optional[int]) -> Optional[int]:
        """The policy's answer for one state: a rung or ``None`` (defer).

        Unvisited states hold the previous rung (rung 0 at session
        start); a learned defer is suppressed when the buffer bucket is
        empty, where idling would risk a stall the teacher never chose.
        """
        levels = self.ladder.levels
        row = self.values.get(state)
        if row is None:
            if prev is not None and 0 <= prev < levels:
                return int(prev)
            return 0
        best = int(np.argmax(row))
        if best == levels:  # defer slot
            if state[0] == 0:
                return int(prev) if prev is not None and 0 <= prev < levels else 0
            return None
        return best

    def to_q_table(self, scale: float = 1.0) -> Dict[Tuple[State, int], float]:
        """Warm-start Q-values: ``scale`` × action probability per state.

        Defer has no Q-action (the Q-agent never defers), so only real
        rungs are emitted; greedy over the result matches this policy
        wherever it picks a rung.
        """
        q: Dict[Tuple[State, int], float] = {}
        for state, row in self.values.items():
            for action in range(self.ladder.levels):
                q[(state, action)] = float(scale * row[action])
        return q

    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Write the policy as a single JSON document."""
        doc = {
            "kind": "policy",
            "name": self.name,
            "ladder": {
                "bitrates": list(self.ladder.bitrates),
                "segment_duration": self.ladder.segment_duration,
                "name": self.ladder.name,
                "size_variation": self.ladder.size_variation,
            },
            "max_buffer": self.max_buffer,
            "buffer_buckets": self.buffer_buckets,
            "throughput_buckets": self.throughput_buckets,
            "values": {
                f"{b},{t},{p}": [float(x) for x in row]
                for (b, t, p), row in sorted(self.values.items())
            },
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, sort_keys=True)
            handle.write("\n")

    @staticmethod
    def load(path: str) -> "PolicyTable":
        """Load a policy written by :meth:`save`.

        Raises:
            ValueError: the file is not a policy table document.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not a policy file ({exc})") from None
        if not isinstance(doc, dict) or doc.get("kind") != "policy":
            raise ValueError(f"{path}: not a policy file (missing kind)")
        try:
            ladder_spec = doc["ladder"]
            ladder = BitrateLadder(
                ladder_spec["bitrates"],
                segment_duration=ladder_spec["segment_duration"],
                name=ladder_spec.get("name", ""),
                size_variation=ladder_spec.get("size_variation", 0.0),
            )
            policy = PolicyTable(
                ladder=ladder,
                max_buffer=float(doc["max_buffer"]),
                buffer_buckets=int(doc["buffer_buckets"]),
                throughput_buckets=int(doc["throughput_buckets"]),
                name=str(doc.get("name", "bc")),
            )
            for key, row in doc["values"].items():
                b, t, p = (int(x) for x in key.split(","))
                arr = np.asarray(row, dtype=float)
                if arr.shape != (ladder.levels + 1,):
                    raise ValueError(
                        f"state {key} has {arr.size} scores for "
                        f"{ladder.levels} rungs"
                    )
                policy.values[(b, t, p)] = arr
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"{path}: corrupt policy file ({exc})") from None
        return policy


class PolicyController(AbrController):
    """Serve a :class:`PolicyTable` as an ABR controller.

    Observations are discretised with the policy's own bucket sizes but
    the *observation's* ladder and buffer cap, so the controller stays on
    the state-space contract even if the serving ladder drifts from the
    training one.
    """

    def __init__(self, policy: PolicyTable, name: Optional[str] = None) -> None:
        super().__init__(predictor=None)
        self.policy = policy
        self.name = name or policy.name

    def select_quality(self, obs: PlayerObservation) -> Optional[int]:
        state = encode_state(
            obs.buffer_level,
            obs.last_throughput,
            obs.previous_quality,
            obs.max_buffer,
            obs.ladder.min_bitrate,
            obs.ladder.max_bitrate,
            self.policy.buffer_buckets,
            self.policy.throughput_buckets,
        )
        decision = self.policy.decide(state, obs.previous_quality)
        if decision is not None and not 0 <= decision < obs.ladder.levels:
            # A policy trained on a taller ladder than the one serving:
            # clamp rather than hand the player an out-of-range rung.
            decision = obs.ladder.levels - 1
        return decision


def fit_bc(
    dataset: DemoDataset,
    smoothing: float = 0.5,
    name: str = "bc",
) -> Tuple[PolicyTable, CoverageReport]:
    """Clone the teacher: per-state action distributions from counts.

    Args:
        dataset: discretised demonstrations (see
            :func:`repro.learn.dataset.load_demonstrations`).
        smoothing: Laplace pseudo-count added to every action (including
            defer) before normalising; must be positive so unseen actions
            keep non-zero probability.
        name: controller name of the cloned policy.

    Returns:
        ``(policy, coverage)`` — the greedy policy table and its
        state-space coverage report.
    """
    if smoothing <= 0:
        raise ValueError("smoothing must be positive")
    levels = dataset.ladder.levels
    policy = PolicyTable(
        ladder=dataset.ladder,
        max_buffer=dataset.max_buffer,
        buffer_buckets=dataset.buffer_buckets,
        throughput_buckets=dataset.throughput_buckets,
        name=name,
    )
    for state, counts in dataset.counts.items():
        total = float(counts.sum()) + smoothing * (levels + 1)
        policy.values[state] = (counts + smoothing) / total
    histogram = dataset.action_histogram()
    total_rows = int(histogram.sum())
    coverage = CoverageReport(
        total_states=dataset.total_states,
        visited_states=len(dataset.counts),
        sessions=dataset.sessions,
        decisions=dataset.decisions,
        defer_fraction=(
            float(histogram[-1]) / total_rows if total_rows else 0.0
        ),
        action_histogram=tuple(int(x) for x in histogram),
    )
    return policy, coverage
