"""Distillation: a learned policy as a dense, servable decision grid.

The sparse policy table becomes a dense int8
:class:`~repro.core.lookup.DecisionTable` on the same wire format the
solver-derived tables use (``save_mmap``/``load_mmap``, CRC-checksummed,
versioned), so a learned policy plugs into the entire serving stack
unchanged: :class:`~repro.core.lookup.TablePublisher` publishes it,
:meth:`~repro.service.shard.ShardedDecisionService.rollout` canaries it
wave-by-wave with automatic rollback, and every shard worker memory-maps
the same pages.

Grid cells map through the policy's own decision rule
(:meth:`~repro.learn.bc.PolicyTable.decide`): visited states keep their
greedy action, learned defers become the table's ``-1`` defer cells
(tier 1 resolves those by holding the previous rung), and unvisited
states distill to the safe-hold fallback — never to defer, so low
demonstration coverage cannot inflate the defer fraction the rollout
canary probes.
"""

from __future__ import annotations

import math
import time
from typing import Optional

import numpy as np

from ..abr.base import AbrController, PlayerObservation
from ..abr.rl import encode_state
from ..core.lookup import _DEFER, DecisionTable, TableStats
from ..core.objective import SodaConfig
from .bc import PolicyTable

__all__ = ["distill_policy", "TableController"]


def distill_policy(
    policy: PolicyTable,
    throughput_points: int = 48,
    buffer_points: int = 48,
    version: int = 1,
    config: Optional[SodaConfig] = None,
) -> DecisionTable:
    """Render a policy onto a dense (throughput × buffer × prev) grid.

    The grid axes match the solver-built tables exactly (log-spaced
    throughput over 1/4×..4× the ladder span, linear buffer, prev-rung
    axis with slot 0 = "no previous rung"), so a distilled table is a
    drop-in tier-1 replacement: same lookup code, same mmap format, same
    rollout machinery.

    Args:
        policy: the (cloned or fine-tuned) policy to distill.
        throughput_points / buffer_points: grid resolution; resolutions
            beyond the policy's bucket counts cost nothing but land on
            the same cells.
        version: monotonic table version stamped into the header.
        config: SODA config recorded in the header (the distilled table
            never solves, but the wire format carries one); defaults to
            the stock fast-backend config.

    Raises:
        ValueError: degenerate grid sizes or version.
    """
    if throughput_points < 2 or buffer_points < 2:
        raise ValueError("grids need at least two points per axis")
    if version < 1:
        raise ValueError("table version must be at least 1")
    start = time.perf_counter()
    ladder = policy.ladder
    table = DecisionTable.__new__(DecisionTable)
    table.ladder = ladder
    table.max_buffer = policy.max_buffer
    table.config = config or SodaConfig(solver_backend="fast")
    table.version = version
    table._tput_grid = np.geomspace(
        0.25 * ladder.min_bitrate, 4.0 * ladder.max_bitrate, throughput_points
    )
    table._buffer_grid = np.linspace(0.0, policy.max_buffer, buffer_points)
    grid = np.full(
        (throughput_points, buffer_points, ladder.levels + 1),
        _DEFER,
        dtype=np.int8,
    )
    for ti, tput in enumerate(table._tput_grid):
        for bi, buf in enumerate(table._buffer_grid):
            for prev_axis in range(ladder.levels + 1):
                prev = None if prev_axis == 0 else prev_axis - 1
                state = encode_state(
                    float(buf),
                    float(tput),
                    prev,
                    policy.max_buffer,
                    ladder.min_bitrate,
                    ladder.max_bitrate,
                    policy.buffer_buckets,
                    policy.throughput_buckets,
                )
                decision = policy.decide(state, prev)
                grid[ti, bi, prev_axis] = (
                    _DEFER if decision is None else decision
                )
    table._table = grid
    table.stats = TableStats(
        cells=int(grid.size),
        build_seconds=time.perf_counter() - start,
        memory_bytes=int(grid.nbytes),
    )
    return table


class TableController(AbrController):
    """Serve any :class:`DecisionTable` as an ABR controller.

    Tier-1 semantics in controller form: every decision is a
    nearest-neighbour ``lookup_observation``, and a defer cell returns
    ``None`` (the player idles briefly and asks again).  This is how the
    distilled and solver-built tables are compared head-to-head through
    the ordinary QoE pipeline.
    """

    def __init__(self, table: DecisionTable, name: str = "table") -> None:
        super().__init__(predictor=None)
        self.table = table
        self.name = name

    def select_quality(self, obs: PlayerObservation) -> Optional[int]:
        prev = obs.previous_quality
        if prev is not None and not 0 <= prev < self.table.ladder.levels:
            # Off-ladder history (foreign ladder, corrupt observation):
            # treat as cold start rather than index past the prev axis.
            prev = None
        throughput = obs.last_throughput
        if throughput is None or not math.isfinite(throughput):
            throughput = float(self.table.tput_grid[0])
        buffer_level = obs.buffer_level
        if not math.isfinite(buffer_level):
            buffer_level = 0.0
        decision = self.table.lookup(throughput, buffer_level, prev)
        if decision is not None and not 0 <= decision < obs.ladder.levels:
            return obs.ladder.levels - 1
        return decision
