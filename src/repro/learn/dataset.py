"""Demonstration datasets: journaled SODA decisions → (state, action) counts.

A *demonstration file* is a JSONL sibling of the run-journal format: one
``demo-manifest`` line carrying everything a learner needs to interpret the
rows (ladder, buffer cap, teacher controller, source config hash), then one
``demo`` line per session holding that session's decision rows.  Rows are
``[buffer_level, throughput, prev_rung, action]`` with ``-1`` encoding
no-history / no-previous-rung / defer — exactly what the ``log_decisions``
hook records on :class:`~repro.sim.player.SessionResult`.

Extraction streams the source journal through
:func:`repro.runner.journal.iter_records`, so multi-hundred-MB (possibly
gzip-compressed) journals never load into memory; a ``.gz`` output path
compresses the demonstration file the same way.

Loading discretises every row into the (buffer bucket, throughput bucket,
previous rung) state space shared with
:func:`repro.abr.rl.encode_state` — the single contract that keeps BC,
fine-tuning, and distillation mutually consistent.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..abr.rl import State, encode_state
from ..runner.journal import JournalError, iter_records
from ..sim.video import BitrateLadder

__all__ = [
    "ExtractReport",
    "DemoDataset",
    "extract_demonstrations",
    "load_demonstrations",
]

#: schema version of the demonstration-file manifest
_DEMO_VERSION = 1


@dataclass(frozen=True)
class ExtractReport:
    """What one extraction pass produced.

    Attributes:
        path: the demonstration file written.
        controller: the teacher whose decisions were kept.
        sessions: sessions with at least one decision row.
        decisions: total decision rows written.
        skipped: sessions of the teacher dropped (failed, or journaled
            without decision rows).
    """

    path: str
    controller: str
    sessions: int
    decisions: int
    skipped: int


@dataclass
class DemoDataset:
    """Discretised demonstrations: per-state action counts.

    ``counts[state]`` is an int array of length ``ladder.levels + 1``; the
    last slot counts defers.  States follow
    :func:`repro.abr.rl.encode_state` with this dataset's bucket sizes.
    """

    ladder: BitrateLadder
    max_buffer: float
    controller: str
    buffer_buckets: int
    throughput_buckets: int
    counts: Dict[State, np.ndarray] = field(default_factory=dict)
    sessions: int = 0
    decisions: int = 0

    @property
    def total_states(self) -> int:
        """Size of the full state space (visited or not)."""
        return (
            self.buffer_buckets
            * self.throughput_buckets
            * (self.ladder.levels + 1)
        )

    def action_histogram(self) -> np.ndarray:
        """Total count per action across all states (defer slot last)."""
        total = np.zeros(self.ladder.levels + 1, dtype=np.int64)
        for row in self.counts.values():
            total += row
        return total

    def add_row(self, row) -> None:
        """Discretise and count one ``[buffer, tput, prev, action]`` row."""
        if len(row) != 4:
            raise ValueError(f"demonstration row must have 4 fields: {row!r}")
        buffer_level, throughput, prev, action = (
            float(row[0]), float(row[1]), int(row[2]), int(row[3]),
        )
        state = encode_state(
            buffer_level,
            None if throughput < 0 else throughput,
            None if prev < 0 else prev,
            self.max_buffer,
            self.ladder.min_bitrate,
            self.ladder.max_bitrate,
            self.buffer_buckets,
            self.throughput_buckets,
        )
        levels = self.ladder.levels
        if not -1 <= action < levels:
            raise ValueError(f"action {action} out of range for {levels} rungs")
        slot = levels if action < 0 else action
        if state not in self.counts:
            self.counts[state] = np.zeros(levels + 1, dtype=np.int64)
        self.counts[state][slot] += 1
        self.decisions += 1


def _open_text(path: str, mode: str):
    """Text handle, gzip-compressed when the path ends in ``.gz``."""
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _ladder_from_spec(spec: dict) -> BitrateLadder:
    ladder_spec = spec.get("ladder") or {}
    try:
        return BitrateLadder(
            ladder_spec["bitrates"],
            segment_duration=ladder_spec["segment_duration"],
            name=ladder_spec.get("name", ""),
            size_variation=ladder_spec.get("size_variation", 0.0),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise JournalError(f"manifest has no usable ladder spec: {exc}") from None


def extract_demonstrations(
    journal_path: str,
    out_path: str,
    controller: str = "soda",
) -> ExtractReport:
    """Extract one teacher's decision rows from a run journal.

    Streams the journal (plain or gzip) record by record; sessions of
    ``controller`` that completed (``ok`` or ``flagged``) and carry
    decision rows become one ``demo`` line each in ``out_path``.

    Raises:
        JournalError: no manifest line, or no session of the teacher
            carries decision rows (the run was journaled without
            ``--log-decisions``).
    """
    manifest: Optional[dict] = None
    sessions = decisions = skipped = 0
    with _open_text(out_path, "w") as out:
        for record in iter_records(journal_path):
            kind = record.get("kind")
            if kind == "manifest":
                manifest = record
                spec = record.get("spec") or {}
                ladder = _ladder_from_spec(spec)
                player = spec.get("player") or {}
                header = {
                    "kind": "demo-manifest",
                    "version": _DEMO_VERSION,
                    "controller": controller,
                    "source_config": record.get("config_hash", ""),
                    "ladder": {
                        "bitrates": list(ladder.bitrates),
                        "segment_duration": ladder.segment_duration,
                        "name": ladder.name,
                        "size_variation": ladder.size_variation,
                    },
                    "max_buffer": float(player.get("max_buffer", 20.0)),
                }
                out.write(json.dumps(header) + "\n")
                continue
            if kind != "session":
                continue
            if record.get("controller") != controller:
                continue
            if manifest is None:
                raise JournalError(
                    f"{journal_path}: session record before the manifest line"
                )
            rows = record.get("decisions")
            if record.get("status") not in ("ok", "flagged") or not rows:
                skipped += 1
                continue
            out.write(json.dumps({
                "kind": "demo",
                "trace": record.get("trace", ""),
                "seed": record.get("seed", 0),
                "decisions": rows,
            }) + "\n")
            sessions += 1
            decisions += len(rows)
    if manifest is None:
        raise JournalError(f"{journal_path}: no manifest line; not a run journal")
    if sessions == 0:
        raise JournalError(
            f"{journal_path}: no '{controller}' session carries decision "
            f"rows — re-run the experiment with --log-decisions"
        )
    return ExtractReport(
        path=out_path,
        controller=controller,
        sessions=sessions,
        decisions=decisions,
        skipped=skipped,
    )


def load_demonstrations(
    path: str,
    buffer_buckets: int = 8,
    throughput_buckets: int = 8,
) -> DemoDataset:
    """Load a demonstration file into per-state action counts.

    Streams through :func:`iter_records` (demonstration files share the
    journal line format, gzip detection included) and discretises every
    row with :func:`repro.abr.rl.encode_state`.

    Raises:
        JournalError: no ``demo-manifest`` line or no decision rows.
        ValueError: degenerate bucket sizes.
    """
    if buffer_buckets < 1 or throughput_buckets < 1:
        raise ValueError("bucket counts must be positive")
    dataset: Optional[DemoDataset] = None
    for record in iter_records(path):
        kind = record.get("kind")
        if kind == "demo-manifest":
            dataset = DemoDataset(
                ladder=_ladder_from_spec(record),
                max_buffer=float(record.get("max_buffer", 20.0)),
                controller=str(record.get("controller", "")),
                buffer_buckets=buffer_buckets,
                throughput_buckets=throughput_buckets,
            )
            continue
        if kind != "demo":
            continue
        if dataset is None:
            raise JournalError(f"{path}: demo line before the demo-manifest")
        for row in record.get("decisions") or ():
            dataset.add_row(row)
        dataset.sessions += 1
    if dataset is None:
        raise JournalError(
            f"{path}: no demo-manifest line; not a demonstration file"
        )
    if dataset.decisions == 0:
        raise JournalError(f"{path}: demonstration file holds no decisions")
    return dataset
