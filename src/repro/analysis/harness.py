"""Experiment harness: run controller suites over datasets and summarise.

This is the machinery behind every evaluation bench: build fresh
controllers per session, stream every trace of a dataset under a profile,
and aggregate the paper's QoE metrics with confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..abr import (
    AbrController,
    BolaController,
    DynamicController,
    HybController,
    MpcController,
    RobustMpcController,
)
from ..core.controller import SodaController
from ..core.objective import SodaConfig
from ..prediction.ema import EmaPredictor
from ..qoe.aggregate import QoeSummary
from ..qoe.metrics import QoeMetrics
from ..sim.network import ThroughputTrace
from ..sim.profiles import EvaluationProfile
from ..sim.session import run_dataset

__all__ = ["SuiteResult", "run_suite", "standard_controllers"]

ControllerFactory = Callable[[], AbrController]


@dataclass
class SuiteResult:
    """Per-controller QoE metrics for one dataset × profile experiment."""

    profile: str
    dataset: str
    per_controller: Dict[str, List[QoeMetrics]] = field(default_factory=dict)

    def summary(self, controller: str) -> QoeSummary:
        return QoeSummary.of(self.per_controller[controller])

    def summaries(self) -> Dict[str, QoeSummary]:
        return {name: self.summary(name) for name in self.per_controller}

    def best_baseline_qoe(self, soda_name: str = "soda") -> float:
        """Highest mean QoE among the non-SODA controllers."""
        candidates = [
            self.summary(name).qoe.mean
            for name in self.per_controller
            if name != soda_name
        ]
        if not candidates:
            raise ValueError("no baselines in the suite")
        return max(candidates)

    def improvement_over_best_baseline(self, soda_name: str = "soda") -> float:
        """Relative QoE improvement of SODA over the best baseline.

        Matches the paper's headline "9.55% to 27.8%" metric; computed on
        QoE scores shifted to be positive over the controller set when any
        mean score is negative (relative change is otherwise undefined).
        """
        soda = self.summary(soda_name).qoe.mean
        best = self.best_baseline_qoe(soda_name)
        floor = min(
            self.summary(name).qoe.mean for name in self.per_controller
        )
        shift = -floor + 0.1 if floor < 0 else 0.0
        return (soda + shift) / (best + shift) - 1.0


def standard_controllers(
    soda_config: Optional[SodaConfig] = None,
    predictor_factory: Optional[Callable[[], object]] = None,
) -> Dict[str, ControllerFactory]:
    """The §6.1.2 baseline suite plus SODA, as per-session factories.

    Args:
        soda_config: SODA tuning; defaults to :class:`SodaConfig`'s.
        predictor_factory: builds the predictor given to the hybrid
            controllers (SODA, HYB, Dynamic); defaults to the dash.js EMA
            predictor used in §6.1.1.  MPC keeps its harmonic-mean
            predictor, as in [17]; BOLA uses none.
    """
    make_predictor = predictor_factory or (lambda: EmaPredictor())
    cfg = soda_config or SodaConfig()
    return {
        "soda": lambda: SodaController(predictor=make_predictor(), config=cfg),
        "hyb": lambda: HybController(predictor=make_predictor()),
        "bola": lambda: BolaController(),
        "dynamic": lambda: DynamicController(predictor=make_predictor()),
        "mpc": lambda: RobustMpcController(),
    }


def run_suite(
    factories: Mapping[str, ControllerFactory],
    traces: Sequence[ThroughputTrace],
    profile: EvaluationProfile,
    dataset_name: str = "dataset",
    qoe_beta: float = 10.0,
    qoe_gamma: float = 1.0,
) -> SuiteResult:
    """Run every controller factory over every trace of a dataset."""
    if not factories:
        raise ValueError("need at least one controller factory")
    if not traces:
        raise ValueError("need at least one trace")
    result = SuiteResult(profile=profile.name, dataset=dataset_name)
    for name, factory in factories.items():
        result.per_controller[name] = run_dataset(
            factory,
            traces,
            profile.ladder,
            profile.player,
            utility=profile.utility,
            ssim_model=profile.ssim_model,
            qoe_beta=qoe_beta,
            qoe_gamma=qoe_gamma,
        )
    return result
