"""Experiment harness: run controller suites over datasets and summarise.

This is the machinery behind every evaluation bench: build fresh
controllers per session, stream every trace of a dataset under a profile,
and aggregate the paper's QoE metrics with confidence intervals.

Execution is delegated to :mod:`repro.runner`: ``jobs=1`` without a journal
keeps the legacy serial in-process path (exceptions propagate, results are
byte-identical to running the sessions by hand), while ``jobs > 1`` fans
sessions out to supervised worker processes with crash containment, and
``journal``/``resume`` make the run durable and restartable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..abr import (
    AbrController,
    BolaController,
    DynamicController,
    HybController,
    MpcController,
    RobustMpcController,
)
from ..core.controller import SodaController
from ..core.objective import SodaConfig
from ..prediction.ema import EmaPredictor
from ..qoe.aggregate import QoeSummary
from ..qoe.metrics import QoeMetrics, qoe_from_session
from ..runner import (
    Journal,
    SessionKey,
    SessionRecord,
    SessionTask,
    audit_session,
    config_hash,
    execute,
    metrics_to_dict,
)
from ..sim.network import ThroughputTrace
from ..sim.profiles import EvaluationProfile
from ..sim.session import run_session

__all__ = ["SuiteResult", "run_suite", "standard_controllers", "trace_label"]

ControllerFactory = Callable[[], AbrController]


def trace_label(index: int, trace: ThroughputTrace) -> str:
    """A stable per-session trace name (falls back to the index)."""
    return trace.name or f"trace-{index}"


@dataclass
class SuiteResult:
    """Per-controller QoE metrics for one dataset × profile experiment.

    ``per_controller`` holds the metrics of every *completed* session
    (including invariant-flagged ones, which are additionally listed in
    ``flagged``); sessions whose worker raised, timed out, or crashed are
    recorded in ``failures`` instead of silently vanishing.
    """

    profile: str
    dataset: str
    per_controller: Dict[str, List[QoeMetrics]] = field(default_factory=dict)
    failures: Dict[str, List[SessionRecord]] = field(default_factory=dict)
    flagged: Dict[str, List[SessionRecord]] = field(default_factory=dict)

    def summary(self, controller: str) -> QoeSummary:
        return QoeSummary.of(self.per_controller[controller])

    def summaries(self) -> Dict[str, QoeSummary]:
        return {
            name: self.summary(name)
            for name, metrics in self.per_controller.items()
            if metrics
        }

    @property
    def failure_count(self) -> int:
        return sum(len(records) for records in self.failures.values())

    @property
    def flagged_count(self) -> int:
        """Completed sessions the invariant auditor flagged."""
        return sum(len(records) for records in self.flagged.values())

    def failure_lines(self) -> List[str]:
        """One line per controller with failed or flagged sessions."""
        lines: List[str] = []
        for name in self.per_controller:
            failed = self.failures.get(name, ())
            if failed:
                err = (failed[0].error or {})
                lines.append(
                    f"{name}: {len(failed)} session(s) failed; first: "
                    f"[{failed[0].key.trace}] {err.get('phase', 'error')}: "
                    f"{err.get('type', '?')}: {err.get('message', '')}"
                )
            bad = self.flagged.get(name, ())
            if bad:
                first = bad[0].violations[0] if bad[0].violations else "?"
                lines.append(
                    f"{name}: {len(bad)} session(s) flagged by the invariant "
                    f"auditor; first: [{bad[0].key.trace}] {first}"
                )
        return lines

    def best_baseline_qoe(self, soda_name: str = "soda") -> float:
        """Highest mean QoE among the non-SODA controllers."""
        candidates = [
            self.summary(name).qoe.mean
            for name in self.per_controller
            if name != soda_name
        ]
        if not candidates:
            raise ValueError("no baselines in the suite")
        return max(candidates)

    def improvement_over_best_baseline(self, soda_name: str = "soda") -> float:
        """Relative QoE improvement of SODA over the best baseline.

        Matches the paper's headline "9.55% to 27.8%" metric; computed on
        QoE scores shifted to be positive over the controller set when any
        mean score is negative (relative change is otherwise undefined).
        """
        soda = self.summary(soda_name).qoe.mean
        best = self.best_baseline_qoe(soda_name)
        floor = min(
            self.summary(name).qoe.mean for name in self.per_controller
        )
        shift = -floor + 0.1 if floor < 0 else 0.0
        return (soda + shift) / (best + shift) - 1.0


def standard_controllers(
    soda_config: Optional[SodaConfig] = None,
    predictor_factory: Optional[Callable[[], object]] = None,
) -> Dict[str, ControllerFactory]:
    """The §6.1.2 baseline suite plus SODA, as per-session factories.

    Args:
        soda_config: SODA tuning; defaults to :class:`SodaConfig`'s.
        predictor_factory: builds the predictor given to the hybrid
            controllers (SODA, HYB, Dynamic); defaults to the dash.js EMA
            predictor used in §6.1.1.  MPC keeps its harmonic-mean
            predictor, as in [17]; BOLA uses none.
    """
    make_predictor = predictor_factory or (lambda: EmaPredictor())
    cfg = soda_config or SodaConfig()
    return {
        "soda": lambda: SodaController(predictor=make_predictor(), config=cfg),
        "hyb": lambda: HybController(predictor=make_predictor()),
        "bola": lambda: BolaController(),
        "dynamic": lambda: DynamicController(predictor=make_predictor()),
        "mpc": lambda: RobustMpcController(),
    }


def suite_spec(
    factories: Mapping[str, ControllerFactory],
    traces: Sequence[ThroughputTrace],
    profile: EvaluationProfile,
    dataset_name: str,
    qoe_beta: float,
    qoe_gamma: float,
    log_decisions: bool = False,
) -> Dict[str, object]:
    """The canonical (JSON-safe) config of one suite run, for hashing.

    ``log_decisions`` only enters the spec when enabled, so the config
    hash of every journal written before the hook existed is unchanged.
    """
    spec: Dict[str, object] = {
        "kind": "suite",
        "dataset": dataset_name,
        "profile": profile.name,
        "utility": profile.utility,
        "controllers": list(factories.keys()),
        "traces": [trace_label(i, t) for i, t in enumerate(traces)],
        "player": dataclasses.asdict(profile.player),
        "ladder": {
            "name": profile.ladder.name,
            "bitrates": list(profile.ladder.bitrates),
            "segment_duration": profile.ladder.segment_duration,
            "size_variation": profile.ladder.size_variation,
        },
        "qoe": {"beta": qoe_beta, "gamma": qoe_gamma},
    }
    if log_decisions:
        spec["log_decisions"] = True
    return spec


def _make_session_thunk(
    factory: ControllerFactory,
    trace: ThroughputTrace,
    profile: EvaluationProfile,
    qoe_beta: float,
    qoe_gamma: float,
    seed: int,
    fault_factory: Optional[Callable[[], object]] = None,
    log_decisions: bool = False,
) -> Callable[[], Dict[str, object]]:
    """One session as a runner thunk: simulate, score, audit."""

    def thunk() -> Dict[str, object]:
        controller = factory()
        faults = fault_factory() if fault_factory is not None else None
        result = run_session(
            controller,
            trace,
            profile.ladder,
            profile.player,
            faults=faults,
            log_decisions=log_decisions,
        )
        metrics = qoe_from_session(
            result,
            utility=profile.utility,
            ssim_model=profile.ssim_model,
            beta=qoe_beta,
            gamma=qoe_gamma,
            seed=seed,
        )
        violations = audit_session(
            result, metrics, config=profile.player, faults=faults
        )
        output: Dict[str, object] = {
            "metrics": metrics_to_dict(metrics),
            "counters": {
                "segments": result.num_segments,
                "wall_duration": result.wall_duration,
                "rebuffer_events": result.rebuffer_events,
                "abandonments": result.abandonments,
                "faults_injected": result.faults_injected,
                "retries": result.retries,
                "fallback_decisions": result.fallback_decisions,
                "plan_cache_hits": result.plan_cache_hits,
                "plan_cache_misses": result.plan_cache_misses,
            },
            "violations": violations,
        }
        if log_decisions:
            output["decisions"] = result.decision_log
        return output

    return thunk


def run_suite(
    factories: Mapping[str, ControllerFactory],
    traces: Sequence[ThroughputTrace],
    profile: EvaluationProfile,
    dataset_name: str = "dataset",
    qoe_beta: float = 10.0,
    qoe_gamma: float = 1.0,
    *,
    jobs: int = 1,
    journal: Optional[str] = None,
    resume: bool = False,
    session_timeout: Optional[float] = None,
    log_decisions: bool = False,
) -> SuiteResult:
    """Run every controller factory over every trace of a dataset.

    Args:
        factories: per-controller session factories.
        traces: the dataset.
        profile: evaluation profile (ladder, player config, utility).
        dataset_name: label used in results and journal keys.
        qoe_beta: rebuffering weight of the QoE score.
        qoe_gamma: switching weight of the QoE score.
        jobs: worker processes; ``1`` (default) runs serially in-process
            exactly as before, and a session exception propagates.  With
            ``jobs > 1`` (or a journal) failures are contained as per-session
            failure records instead.
        journal: path of a JSONL run journal; every completed session is
            flushed there atomically.
        resume: replay ``journal`` and skip sessions already completed
            under the same config hash (refuses a mismatched config).
        session_timeout: per-session wall-clock budget in seconds,
            enforced by killing the worker (``jobs > 1`` only).
        log_decisions: record every controller answer as a demonstration
            row on each session record (and in the journal), producing a
            dataset for ``repro.learn``.  Changes the config hash, so a
            demonstration journal never resumes a plain run or vice versa.
    """
    if not factories:
        raise ValueError("need at least one controller factory")
    if not traces:
        raise ValueError("need at least one trace")
    if resume and journal is None:
        raise ValueError("--resume requires a journal path")

    spec = suite_spec(
        factories,
        traces,
        profile,
        dataset_name,
        qoe_beta,
        qoe_gamma,
        log_decisions=log_decisions,
    )
    chash = config_hash(spec)
    run_journal = (
        Journal.open(journal, spec, resume=resume)
        if journal is not None
        else None
    )
    contain = jobs > 1 or run_journal is not None

    tasks: List[SessionTask] = []
    for name, factory in factories.items():
        for index, trace in enumerate(traces):
            key = SessionKey(
                controller=name,
                dataset=dataset_name,
                trace=trace_label(index, trace),
                seed=index,
                config_hash=chash,
            )
            tasks.append(
                SessionTask(
                    key=key,
                    thunk=_make_session_thunk(
                        factory,
                        trace,
                        profile,
                        qoe_beta,
                        qoe_gamma,
                        index,
                        log_decisions=log_decisions,
                    ),
                )
            )

    records = execute(
        tasks,
        jobs=jobs,
        timeout=session_timeout,
        contain=contain,
        journal=run_journal,
    )

    result = SuiteResult(profile=profile.name, dataset=dataset_name)
    for name in factories:
        result.per_controller[name] = []
    for record in records:
        name = record.key.controller
        if record.completed:
            metrics = record.to_metrics()
            if metrics is not None:
                result.per_controller[name].append(metrics)
            if record.status == "flagged":
                result.flagged.setdefault(name, []).append(record)
        else:
            result.failures.setdefault(name, []).append(record)
    return result
