"""Experiment harness, result tables, and engagement/production models."""

from .engagement import EngagementModel, fit_line
from .harness import SuiteResult, run_suite, standard_controllers
from .pareto import OperatingPoint, dominates, pareto_front, sweep_operating_points
from .report import ReportConfig, generate_report
from .robustness import (
    RobustnessCurve,
    RobustnessPoint,
    RobustnessReport,
    sweep_fault_intensity,
)
from .production import (
    DEVICE_FAMILIES,
    DeviceFamily,
    ProductionDeltas,
    relative_deltas,
)
from .tables import format_series, format_table, qoe_table

__all__ = [
    "EngagementModel",
    "fit_line",
    "SuiteResult",
    "OperatingPoint",
    "dominates",
    "pareto_front",
    "sweep_operating_points",
    "ReportConfig",
    "generate_report",
    "RobustnessPoint",
    "RobustnessCurve",
    "RobustnessReport",
    "sweep_fault_intensity",
    "run_suite",
    "standard_controllers",
    "DEVICE_FAMILIES",
    "DeviceFamily",
    "ProductionDeltas",
    "relative_deltas",
    "format_series",
    "format_table",
    "qoe_table",
]
