"""User-engagement model: viewing behaviour as a function of QoE.

The paper's production evidence rests on two engagement relationships we
cannot observe without a production fleet (DESIGN.md substitution #6), both
of which are grounded in published measurements:

* Figure 1: among short-lived HD sessions, the fraction of the stream
  watched falls roughly linearly with the bitrate switching rate, dropping
  below 10% once switching exceeds 20%;
* prior work [7] (cited in §1): a 1% increase in rebuffering time
  correlates with a ~3-minute reduction in viewing time.

:class:`EngagementModel` encodes both as a multiplicative hazard on the
session duration, so relative viewing-duration deltas (Figure 13's
"viewing duration" rows) can be derived from simulated QoE metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["EngagementModel", "fit_line"]


@dataclass(frozen=True)
class EngagementModel:
    """Viewing behaviour as a function of switching and rebuffering.

    Expected viewing duration is modelled as

        D = D_base · exp(−α_switch · p_switch − α_rebuf · ρ_rebuf)

    Attributes:
        base_minutes: viewing duration of a flawless session, minutes.
        switch_sensitivity: α_switch — calibrated so the ~80–90% switching
            reductions of §6.3 translate into the paper's ~6% duration
            gains.
        rebuffer_sensitivity: α_rebuf — calibrated to [7]'s 3 minutes lost
            per 1% rebuffering on a ~90-minute session.
    """

    base_minutes: float = 90.0
    switch_sensitivity: float = 0.65
    rebuffer_sensitivity: float = 3.4

    def expected_duration(
        self, switching_rate: float, rebuffer_ratio: float = 0.0
    ) -> float:
        """Expected viewing duration in minutes."""
        if switching_rate < 0 or rebuffer_ratio < 0:
            raise ValueError("rates must be non-negative")
        hazard = (
            self.switch_sensitivity * switching_rate
            + self.rebuffer_sensitivity * rebuffer_ratio
        )
        return self.base_minutes * math.exp(-hazard)

    def relative_duration_change(
        self,
        switching_a: float,
        rebuffer_a: float,
        switching_b: float,
        rebuffer_b: float,
    ) -> float:
        """Relative duration change going from condition b to condition a."""
        da = self.expected_duration(switching_a, rebuffer_a)
        db = self.expected_duration(switching_b, rebuffer_b)
        return da / db - 1.0

    # ------------------------------------------------------------------
    def sample_watch_fractions(
        self,
        switching_rates: Sequence[float],
        seed: int = 0,
        noise: float = 0.05,
        rng: "np.random.Generator | None" = None,
    ) -> np.ndarray:
        """Simulated per-session watch fractions for the Figure 1 scatter.

        Figure 1 conditions on short-lived sessions (< 25% watched, HD, no
        rebuffering); we reproduce that population: the mean watch fraction
        declines linearly from ~22% at zero switching to ~10% at a 20%
        switching rate, with Gaussian session noise, clipped to (0, 0.25].

        Determinism contract: when ``rng`` is given it takes precedence
        over ``seed`` and exactly ``len(switching_rates)`` normal draws
        are taken from it — no more, no fewer — so a caller threading one
        generator through a larger simulation (e.g. the population
        simulator) advances its stream by a size that depends only on the
        input length.  Without ``rng``, a fresh generator is derived from
        ``seed`` and the result is a pure function of
        ``(switching_rates, seed, noise)``.
        """
        rates = np.asarray(switching_rates, dtype=float)
        if rng is None:
            rng = np.random.default_rng(seed)
        mean = 0.22 - 0.6 * rates
        sampled = mean + rng.normal(0.0, noise, size=rates.shape)
        return np.clip(sampled, 0.005, 0.25)


def fit_line(
    xs: Sequence[float], ys: Sequence[float]
) -> Tuple[float, float]:
    """Least-squares line of best fit ``y = slope · x + intercept``.

    Used by the Figure 1 bench to recover the paper's headline relationship
    from the simulated population.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two paired points")
    slope, intercept = np.polyfit(x, y, 1)
    return float(slope), float(intercept)
