"""One-shot evaluation report: run the core experiments, emit markdown.

``generate_report`` reruns the package's headline experiments (Figure 9's
dataset statistics, Figure 10's controller comparison, Figure 11's noise
sweep, and the Figure 13 production deltas) at a configurable scale and
renders a self-contained markdown report.  EXPERIMENTS.md's measured
columns were produced this way; rerun with more sessions to refresh them:

    python -m repro.analysis.report --sessions 32 --out report.md
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..abr import BolaController, DynamicController, HybController, RobustMpcController
from ..core.controller import SodaController
from ..prediction import NoisyOraclePredictor
from ..qoe import QoeSummary, summarize
from ..sim.profiles import live_profile, production_profile
from ..sim.session import run_dataset, run_session
from ..traces import build_synthetic_datasets
from .harness import run_suite, standard_controllers
from .production import DEVICE_FAMILIES, relative_deltas
from .engagement import EngagementModel

__all__ = ["ReportConfig", "generate_report", "main"]


@dataclass(frozen=True)
class ReportConfig:
    """Scale knobs for the generated report."""

    sessions: int = 8
    session_seconds: float = 480.0
    seed: int = 7
    noise_levels: Sequence[float] = (0.0, 0.3, 0.75)

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ValueError("need at least one session")
        if self.session_seconds < 60:
            raise ValueError("sessions shorter than a minute are not useful")


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def _summary_row(name: str, s: QoeSummary) -> List[str]:
    return [
        name,
        f"{s.qoe.mean:.4f} ± {s.qoe.half_width:.4f}",
        f"{s.utility.mean:.4f}",
        f"{s.rebuffer_ratio.mean:.4f}",
        f"{s.switching_rate.mean:.4f}",
    ]


def generate_report(config: Optional[ReportConfig] = None) -> str:
    """Run the headline experiments and return a markdown report."""
    cfg = config or ReportConfig()
    datasets = build_synthetic_datasets(
        cfg.sessions, session_seconds=cfg.session_seconds, seed=cfg.seed
    )
    profiles = {
        "puffer": live_profile(session_seconds=cfg.session_seconds),
        "5g": live_profile(session_seconds=cfg.session_seconds, cellular=True),
        "4g": live_profile(session_seconds=cfg.session_seconds, cellular=True),
    }

    parts: List[str] = [
        "# SODA reproduction — evaluation report",
        "",
        f"Scale: {cfg.sessions} sessions × {cfg.session_seconds:.0f} s per "
        f"dataset, seed {cfg.seed}.",
    ]

    # ------------------------------------------------------------ Fig 9
    parts += ["", "## Dataset statistics (Figure 9)", ""]
    rows = []
    for name, traces in datasets.items():
        stats = [t.stats() for t in traces]
        rows.append(
            [
                name,
                f"{np.mean([s.mean for s in stats]):.1f}",
                f"{np.mean([s.rsd for s in stats]):.1%}",
            ]
        )
    parts.append(_md_table(["dataset", "mean Mb/s", "mean RSD"], rows))

    # ----------------------------------------------------------- Fig 10
    parts += ["", "## Controller comparison (Figure 10)", ""]
    for name, traces in datasets.items():
        suite = run_suite(standard_controllers(), traces, profiles[name], name)
        summaries = suite.summaries()
        parts += [f"### {name}", ""]
        parts.append(
            _md_table(
                ["controller", "QoE", "utility", "rebuf", "switch"],
                [_summary_row(c, s) for c, s in summaries.items()],
            )
        )
        parts.append(
            f"\nSODA vs best baseline: "
            f"{suite.improvement_over_best_baseline():+.2%}\n"
        )

    # ----------------------------------------------------------- Fig 11
    parts += ["", "## Prediction-noise robustness (Figure 11)", ""]
    noise_rows = []
    subset = datasets["puffer"][: max(cfg.sessions // 2, 2)]
    for noise in cfg.noise_levels:
        metrics = run_dataset(
            lambda n=noise: SodaController(
                predictor=NoisyOraclePredictor(n, seed=5)
            ),
            subset,
            profiles["puffer"].ladder,
            profiles["puffer"].player,
        )
        noise_rows.append([f"{noise:.0%}", f"{summarize(metrics).qoe.mean:.4f}"])
    parts.append(_md_table(["noise level", "SODA mean QoE"], noise_rows))

    # ----------------------------------------------------------- Fig 13
    parts += ["", "## Production A/B simulation (Figure 13)", ""]
    prod_profile = production_profile(session_seconds=cfg.session_seconds)
    rows = []
    for i, family in enumerate(DEVICE_FAMILIES):
        traces = family.traces(
            cfg.sessions, duration=cfg.session_seconds, seed=cfg.seed + 7 * i
        )
        soda_results = [
            run_session(
                SodaController(), t, prod_profile.ladder, prod_profile.player
            )
            for t in traces
        ]
        base_results = [
            run_session(
                DynamicController(), t, prod_profile.ladder,
                prod_profile.player,
            )
            for t in traces
        ]
        deltas = relative_deltas(
            family, soda_results, base_results, EngagementModel()
        )
        rows.append(
            [
                family.name,
                f"{deltas.viewing_duration:+.2%}",
                f"{deltas.bitrate:+.2%}",
                f"{deltas.rebuffer_ratio:+.2%}",
                f"{deltas.switching_rate:+.2%}",
            ]
        )
    parts.append(
        _md_table(
            ["device family", "viewing duration", "bitrate", "rebuffering",
             "switching"],
            rows,
        )
    )
    parts.append("")
    return "\n".join(parts)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=8)
    parser.add_argument("--session-seconds", type=float, default=480.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", help="write the report here (default stdout)")
    args = parser.parse_args(argv)
    report = generate_report(
        ReportConfig(
            sessions=args.sessions,
            session_seconds=args.session_seconds,
            seed=args.seed,
        )
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
