"""Quality / smoothness trade-off frontiers (the paper's §1 claim).

The introduction frames the three QoE components as a three-way trade-off
and claims an ideal controller "pushes the trade-off boundary".  This
module makes that measurable: sweep a controller's tuning knob (γ for SODA,
the switch penalty for MPC, thresholds for BOLA), collect the mean
(switching rate, utility) operating points, and extract the Pareto front.
SODA pushing the boundary means its front dominates the baselines' fronts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from ..qoe.aggregate import QoeSummary
from ..sim.network import ThroughputTrace
from ..sim.profiles import EvaluationProfile
from ..sim.session import run_dataset

__all__ = ["OperatingPoint", "sweep_operating_points", "pareto_front", "dominates"]


@dataclass(frozen=True)
class OperatingPoint:
    """One controller tuning's mean behaviour on a workload.

    Attributes:
        label: "<controller>@<knob value>".
        utility: mean utility (higher is better).
        switching_rate: mean switching rate (lower is better).
        rebuffer_ratio: mean rebuffering ratio (lower is better).
        qoe: mean QoE score.
    """

    label: str
    utility: float
    switching_rate: float
    rebuffer_ratio: float
    qoe: float

    @staticmethod
    def from_summary(label: str, summary: QoeSummary) -> "OperatingPoint":
        return OperatingPoint(
            label=label,
            utility=summary.utility.mean,
            switching_rate=summary.switching_rate.mean,
            rebuffer_ratio=summary.rebuffer_ratio.mean,
            qoe=summary.qoe.mean,
        )


def sweep_operating_points(
    factories: Mapping[str, Callable[[], object]],
    traces: Sequence[ThroughputTrace],
    profile: EvaluationProfile,
) -> List[OperatingPoint]:
    """Evaluate each labelled factory on the workload.

    Args:
        factories: label → fresh-controller factory, one per tuning.
        traces: the workload.
        profile: the player/ladder setting.
    """
    if not factories:
        raise ValueError("need at least one tuning to sweep")
    points = []
    for label, factory in factories.items():
        metrics = run_dataset(
            factory, traces, profile.ladder, profile.player,
            utility=profile.utility, ssim_model=profile.ssim_model,
        )
        points.append(
            OperatingPoint.from_summary(label, QoeSummary.of(metrics))
        )
    return points


def dominates(a: OperatingPoint, b: OperatingPoint) -> bool:
    """True when ``a`` is at least as good as ``b`` on utility, switching,
    and rebuffering, and strictly better on at least one."""
    at_least = (
        a.utility >= b.utility
        and a.switching_rate <= b.switching_rate
        and a.rebuffer_ratio <= b.rebuffer_ratio
    )
    strictly = (
        a.utility > b.utility
        or a.switching_rate < b.switching_rate
        or a.rebuffer_ratio < b.rebuffer_ratio
    )
    return at_least and strictly


def pareto_front(points: Sequence[OperatingPoint]) -> List[OperatingPoint]:
    """The non-dominated subset, sorted by switching rate ascending."""
    front = [
        p
        for p in points
        if not any(dominates(q, p) for q in points if q is not p)
    ]
    return sorted(front, key=lambda p: (p.switching_rate, -p.utility))
