"""Operational-robustness sweeps: QoE degradation under injected faults.

Thm 4.2 and §6.1.4 characterise SODA's robustness to *prediction* error;
this harness measures robustness to *operational* faults — failed fetches,
stalls, latency spikes, outages, and corrupted throughput samples — by
sweeping a :class:`repro.faults.FaultPlan` intensity over a controller
suite and recording how QoE degrades.  Fault streams are seeded per
(intensity, session) and shared across controllers, so every controller
faces the same faults and the curves are directly comparable.

Wired into the ``repro robustness`` CLI subcommand and
``benchmarks/bench_ext_faults.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..abr.resilient import ResilientController
from ..faults.plan import FaultPlan
from ..runner import (
    Journal,
    SessionKey,
    SessionRecord,
    SessionTask,
    config_hash,
    execute,
)
from ..sim.network import ThroughputTrace
from ..sim.profiles import EvaluationProfile
from .harness import (
    ControllerFactory,
    _make_session_thunk,
    standard_controllers,
    trace_label,
)
from .tables import format_table

__all__ = [
    "RobustnessPoint",
    "RobustnessCurve",
    "RobustnessReport",
    "sweep_fault_intensity",
]


@dataclass(frozen=True)
class RobustnessPoint:
    """Aggregate outcome of one (controller, fault intensity) cell.

    Attributes:
        intensity: fault-plan intensity in [0, 1].
        qoe_mean: mean per-session QoE score.
        qoe_std: standard deviation of per-session QoE.
        rebuffer_ratio: mean rebuffering ratio.
        faults_injected: mean faults injected per session.
        retries: mean download retries per session.
        fallback_decisions: mean resilient-fallback decisions per session.
        sessions: number of sessions aggregated.
        switching_rate: mean per-session switching rate (the stability
            axis of the learned-controller evaluations).
    """

    intensity: float
    qoe_mean: float
    qoe_std: float
    rebuffer_ratio: float
    faults_injected: float
    retries: float
    fallback_decisions: float
    sessions: int
    switching_rate: float = float("nan")


@dataclass
class RobustnessCurve:
    """QoE vs. fault intensity for one controller."""

    controller: str
    points: List[RobustnessPoint] = field(default_factory=list)

    @property
    def intensities(self) -> List[float]:
        return [p.intensity for p in self.points]

    @property
    def qoe_means(self) -> List[float]:
        return [p.qoe_mean for p in self.points]

    def degradation(self) -> List[float]:
        """QoE drop from the fault-free point, per intensity."""
        if not self.points:
            return []
        base = self.points[0].qoe_mean
        return [base - p.qoe_mean for p in self.points]

    def is_monotone(self, tolerance: float = 0.0) -> bool:
        """Whether QoE degrades monotonically with intensity, within
        ``tolerance`` (absolute QoE units of allowed uphill noise)."""
        qoe = self.qoe_means
        return all(b <= a + tolerance for a, b in zip(qoe, qoe[1:]))


@dataclass
class RobustnessReport:
    """Robustness curves for a controller suite on one dataset."""

    dataset: str
    profile: str
    curves: Dict[str, RobustnessCurve] = field(default_factory=dict)
    failures: Dict[str, List[SessionRecord]] = field(default_factory=dict)
    flagged: Dict[str, List[SessionRecord]] = field(default_factory=dict)

    def curve(self, controller: str) -> RobustnessCurve:
        return self.curves[controller]

    @property
    def failure_count(self) -> int:
        return sum(len(records) for records in self.failures.values())

    @property
    def flagged_count(self) -> int:
        """Completed sessions the invariant auditor flagged."""
        return sum(len(records) for records in self.flagged.values())

    def failure_lines(self) -> List[str]:
        """One line per controller with failed or flagged sessions."""
        lines: List[str] = []
        for name in self.curves:
            failed = self.failures.get(name, ())
            if failed:
                err = (failed[0].error or {})
                lines.append(
                    f"{name}: {len(failed)} session(s) failed; first: "
                    f"[{failed[0].key.trace}] {err.get('phase', 'error')}: "
                    f"{err.get('type', '?')}: {err.get('message', '')}"
                )
            bad = self.flagged.get(name, ())
            if bad:
                first = bad[0].violations[0] if bad[0].violations else "?"
                lines.append(
                    f"{name}: {len(bad)} session(s) flagged by the invariant "
                    f"auditor; first: [{bad[0].key.trace}] {first}"
                )
        return lines

    def render(self) -> str:
        """ASCII table: rows = controllers, columns = fault intensities."""
        if not self.curves:
            return "(empty robustness report)"
        first = next(iter(self.curves.values()))
        headers = ["controller"] + [
            f"qoe@{p.intensity:.2f}" for p in first.points
        ] + ["drop", "retries", "fallbacks"]
        rows = []
        for name, curve in self.curves.items():
            drop = curve.degradation()[-1] if curve.points else 0.0
            last = curve.points[-1]
            rows.append(
                [name]
                + [f"{p.qoe_mean:.3f}" for p in curve.points]
                + [f"{drop:.3f}", f"{last.retries:.1f}",
                   f"{last.fallback_decisions:.1f}"]
            )
        return format_table(headers, rows)


def _sweep_spec(
    factories: Mapping[str, ControllerFactory],
    traces: Sequence[ThroughputTrace],
    profile: EvaluationProfile,
    intensities: Sequence[float],
    seed: int,
    resilient: bool,
    dataset_name: str,
    qoe_beta: float,
    qoe_gamma: float,
) -> Dict[str, object]:
    """Canonical (JSON-safe) config of one robustness sweep, for hashing."""
    import dataclasses

    return {
        "kind": "robustness",
        "dataset": dataset_name,
        "profile": profile.name,
        "utility": profile.utility,
        "controllers": list(factories.keys()),
        "traces": [trace_label(i, t) for i, t in enumerate(traces)],
        "intensities": [float(x) for x in intensities],
        "seed": seed,
        "resilient": resilient,
        "player": dataclasses.asdict(profile.player),
        "qoe": {"beta": qoe_beta, "gamma": qoe_gamma},
    }


def sweep_fault_intensity(
    traces: Sequence[ThroughputTrace],
    profile: EvaluationProfile,
    factories: Optional[Mapping[str, ControllerFactory]] = None,
    intensities: Sequence[float] = (0.0, 0.1, 0.2, 0.4),
    seed: int = 0,
    resilient: bool = False,
    dataset_name: str = "dataset",
    qoe_beta: float = 10.0,
    qoe_gamma: float = 1.0,
    *,
    jobs: int = 1,
    journal: Optional[str] = None,
    resume: bool = False,
    session_timeout: Optional[float] = None,
) -> RobustnessReport:
    """Sweep fault intensity over a controller suite.

    Args:
        traces: the dataset (one session per trace per cell).
        profile: evaluation profile (ladder + player config).
        factories: controller factories; defaults to the §6.1.2 suite
            (SODA + HYB + BOLA + Dynamic + MPC).
        intensities: fault-plan intensities to sweep, ascending.
        seed: base seed; fault streams derive from (seed, intensity,
            session) only, so all controllers face identical faults.
        resilient: wrap every controller in
            :class:`~repro.abr.ResilientController`.
        dataset_name: label for the report.
        qoe_beta: rebuffering weight of the QoE score.
        qoe_gamma: switching weight of the QoE score.
        jobs: worker processes (see :func:`repro.analysis.run_suite`);
            ``1`` keeps the serial in-process path.
        journal: path of a JSONL run journal (atomic per-session flushes).
        resume: replay ``journal``, skipping completed sessions; refuses a
            config-hash mismatch.
        session_timeout: per-session wall-clock budget, enforced by
            killing the worker (``jobs > 1`` only).
    """
    if not traces:
        raise ValueError("need at least one trace")
    if list(intensities) != sorted(intensities):
        raise ValueError("intensities must be ascending")
    if resume and journal is None:
        raise ValueError("--resume requires a journal path")
    factories = factories or standard_controllers()

    spec = _sweep_spec(
        factories, traces, profile, intensities, seed, resilient,
        dataset_name, qoe_beta, qoe_gamma,
    )
    chash = config_hash(spec)
    run_journal = (
        Journal.open(journal, spec, resume=resume)
        if journal is not None
        else None
    )
    contain = jobs > 1 or run_journal is not None

    def cell_factory(factory: ControllerFactory) -> ControllerFactory:
        if not resilient:
            return factory
        return lambda: ResilientController(factory())

    tasks: List[SessionTask] = []
    meta: List[tuple] = []  # (controller, level_index, session)
    for name, factory in factories.items():
        for level_index, intensity in enumerate(intensities):
            for session, trace in enumerate(traces):
                cell_seed = seed + 7919 * level_index + session
                fault_factory = (
                    None
                    if intensity == 0.0
                    else (
                        lambda i=float(intensity), s=cell_seed:
                            FaultPlan.of_intensity(i, seed=s)
                    )
                )
                tasks.append(
                    SessionTask(
                        key=SessionKey(
                            controller=name,
                            dataset=dataset_name,
                            trace=trace_label(session, trace),
                            seed=cell_seed,
                            config_hash=chash,
                        ),
                        thunk=_make_session_thunk(
                            cell_factory(factory),
                            trace,
                            profile,
                            qoe_beta,
                            qoe_gamma,
                            cell_seed,
                            fault_factory=fault_factory,
                        ),
                    )
                )
                meta.append((name, level_index, session))

    records = execute(
        tasks,
        jobs=jobs,
        timeout=session_timeout,
        contain=contain,
        journal=run_journal,
    )

    report = RobustnessReport(dataset=dataset_name, profile=profile.name)
    cells: Dict[tuple, List[SessionRecord]] = {}
    for (name, level_index, _session), record in zip(meta, records):
        if record.completed:
            cells.setdefault((name, level_index), []).append(record)
            if record.status == "flagged":
                report.flagged.setdefault(name, []).append(record)
        else:
            report.failures.setdefault(name, []).append(record)

    for name in factories:
        curve = RobustnessCurve(controller=name)
        for level_index, intensity in enumerate(intensities):
            cell = cells.get((name, level_index), [])
            qoes = [r.metrics["qoe"] for r in cell]
            rebufs = [r.metrics["rebuffer_ratio"] for r in cell]
            switches = [r.metrics["switching_rate"] for r in cell]
            faults_n = [r.counters.get("faults_injected", 0) for r in cell]
            retries_n = [r.counters.get("retries", 0) for r in cell]
            fallbacks_n = [
                r.counters.get("fallback_decisions", 0) for r in cell
            ]
            nan = float("nan")
            curve.points.append(
                RobustnessPoint(
                    intensity=float(intensity),
                    qoe_mean=float(np.mean(qoes)) if qoes else nan,
                    qoe_std=float(np.std(qoes)) if qoes else nan,
                    rebuffer_ratio=float(np.mean(rebufs)) if rebufs else nan,
                    faults_injected=(
                        float(np.mean(faults_n)) if faults_n else nan
                    ),
                    retries=float(np.mean(retries_n)) if retries_n else nan,
                    fallback_decisions=(
                        float(np.mean(fallbacks_n)) if fallbacks_n else nan
                    ),
                    sessions=len(cell),
                    switching_rate=(
                        float(np.mean(switches)) if switches else nan
                    ),
                )
            )
        report.curves[name] = curve
    return report
