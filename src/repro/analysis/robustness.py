"""Operational-robustness sweeps: QoE degradation under injected faults.

Thm 4.2 and §6.1.4 characterise SODA's robustness to *prediction* error;
this harness measures robustness to *operational* faults — failed fetches,
stalls, latency spikes, outages, and corrupted throughput samples — by
sweeping a :class:`repro.faults.FaultPlan` intensity over a controller
suite and recording how QoE degrades.  Fault streams are seeded per
(intensity, session) and shared across controllers, so every controller
faces the same faults and the curves are directly comparable.

Wired into the ``repro robustness`` CLI subcommand and
``benchmarks/bench_ext_faults.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..abr.resilient import ResilientController
from ..faults.plan import FaultPlan
from ..qoe.metrics import qoe_from_session
from ..sim.network import ThroughputTrace
from ..sim.profiles import EvaluationProfile
from ..sim.session import run_session
from .harness import ControllerFactory, standard_controllers
from .tables import format_table

__all__ = [
    "RobustnessPoint",
    "RobustnessCurve",
    "RobustnessReport",
    "sweep_fault_intensity",
]


@dataclass(frozen=True)
class RobustnessPoint:
    """Aggregate outcome of one (controller, fault intensity) cell.

    Attributes:
        intensity: fault-plan intensity in [0, 1].
        qoe_mean: mean per-session QoE score.
        qoe_std: standard deviation of per-session QoE.
        rebuffer_ratio: mean rebuffering ratio.
        faults_injected: mean faults injected per session.
        retries: mean download retries per session.
        fallback_decisions: mean resilient-fallback decisions per session.
        sessions: number of sessions aggregated.
    """

    intensity: float
    qoe_mean: float
    qoe_std: float
    rebuffer_ratio: float
    faults_injected: float
    retries: float
    fallback_decisions: float
    sessions: int


@dataclass
class RobustnessCurve:
    """QoE vs. fault intensity for one controller."""

    controller: str
    points: List[RobustnessPoint] = field(default_factory=list)

    @property
    def intensities(self) -> List[float]:
        return [p.intensity for p in self.points]

    @property
    def qoe_means(self) -> List[float]:
        return [p.qoe_mean for p in self.points]

    def degradation(self) -> List[float]:
        """QoE drop from the fault-free point, per intensity."""
        if not self.points:
            return []
        base = self.points[0].qoe_mean
        return [base - p.qoe_mean for p in self.points]

    def is_monotone(self, tolerance: float = 0.0) -> bool:
        """Whether QoE degrades monotonically with intensity, within
        ``tolerance`` (absolute QoE units of allowed uphill noise)."""
        qoe = self.qoe_means
        return all(b <= a + tolerance for a, b in zip(qoe, qoe[1:]))


@dataclass
class RobustnessReport:
    """Robustness curves for a controller suite on one dataset."""

    dataset: str
    profile: str
    curves: Dict[str, RobustnessCurve] = field(default_factory=dict)

    def curve(self, controller: str) -> RobustnessCurve:
        return self.curves[controller]

    def render(self) -> str:
        """ASCII table: rows = controllers, columns = fault intensities."""
        if not self.curves:
            return "(empty robustness report)"
        first = next(iter(self.curves.values()))
        headers = ["controller"] + [
            f"qoe@{p.intensity:.2f}" for p in first.points
        ] + ["drop", "retries", "fallbacks"]
        rows = []
        for name, curve in self.curves.items():
            drop = curve.degradation()[-1] if curve.points else 0.0
            last = curve.points[-1]
            rows.append(
                [name]
                + [f"{p.qoe_mean:.3f}" for p in curve.points]
                + [f"{drop:.3f}", f"{last.retries:.1f}",
                   f"{last.fallback_decisions:.1f}"]
            )
        return format_table(headers, rows)


def sweep_fault_intensity(
    traces: Sequence[ThroughputTrace],
    profile: EvaluationProfile,
    factories: Optional[Mapping[str, ControllerFactory]] = None,
    intensities: Sequence[float] = (0.0, 0.1, 0.2, 0.4),
    seed: int = 0,
    resilient: bool = False,
    dataset_name: str = "dataset",
    qoe_beta: float = 10.0,
    qoe_gamma: float = 1.0,
) -> RobustnessReport:
    """Sweep fault intensity over a controller suite.

    Args:
        traces: the dataset (one session per trace per cell).
        profile: evaluation profile (ladder + player config).
        factories: controller factories; defaults to the §6.1.2 suite
            (SODA + HYB + BOLA + Dynamic + MPC).
        intensities: fault-plan intensities to sweep, ascending.
        seed: base seed; fault streams derive from (seed, intensity,
            session) only, so all controllers face identical faults.
        resilient: wrap every controller in
            :class:`~repro.abr.ResilientController`.
        dataset_name: label for the report.
        qoe_beta: rebuffering weight of the QoE score.
        qoe_gamma: switching weight of the QoE score.
    """
    if not traces:
        raise ValueError("need at least one trace")
    if list(intensities) != sorted(intensities):
        raise ValueError("intensities must be ascending")
    factories = factories or standard_controllers()

    report = RobustnessReport(dataset=dataset_name, profile=profile.name)
    for name, factory in factories.items():
        curve = RobustnessCurve(controller=name)
        for level_index, intensity in enumerate(intensities):
            qoes: List[float] = []
            rebufs: List[float] = []
            faults_n: List[int] = []
            retries_n: List[int] = []
            fallbacks_n: List[int] = []
            for session, trace in enumerate(traces):
                controller = factory()
                if resilient:
                    controller = ResilientController(controller)
                plan = (
                    None
                    if intensity == 0.0
                    else FaultPlan.of_intensity(
                        intensity,
                        seed=seed + 7919 * level_index + session,
                    )
                )
                result = run_session(
                    controller,
                    trace,
                    profile.ladder,
                    profile.player,
                    faults=plan,
                )
                metrics = qoe_from_session(
                    result,
                    utility=profile.utility,
                    ssim_model=profile.ssim_model,
                    beta=qoe_beta,
                    gamma=qoe_gamma,
                )
                qoes.append(metrics.qoe)
                rebufs.append(metrics.rebuffer_ratio)
                faults_n.append(result.faults_injected)
                retries_n.append(result.retries)
                fallbacks_n.append(result.fallback_decisions)
            curve.points.append(
                RobustnessPoint(
                    intensity=float(intensity),
                    qoe_mean=float(np.mean(qoes)),
                    qoe_std=float(np.std(qoes)),
                    rebuffer_ratio=float(np.mean(rebufs)),
                    faults_injected=float(np.mean(faults_n)),
                    retries=float(np.mean(retries_n)),
                    fallback_decisions=float(np.mean(fallbacks_n)),
                    sessions=len(traces),
                )
            )
        report.curves[name] = curve
    return report
