"""ASCII rendering of result tables, matching the paper's figures' content.

Every bench prints its rows through these helpers so the regenerated
"figures" are readable in a terminal and diffable in CI logs.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

from ..qoe.aggregate import QoeSummary

__all__ = ["format_table", "qoe_table", "format_series"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a fixed-width ASCII table.

    Args:
        headers: column titles.
        rows: cell values; floats are formatted to four decimals.

    Raises:
        ValueError: when a row's width differs from the header's.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4f}"
        return str(cell)

    text_rows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        sep,
    ]
    for row in text_rows:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def qoe_table(summaries: Mapping[str, QoeSummary]) -> str:
    """One row per controller: QoE score and its three components ± 95% CI."""
    headers = ["controller", "qoe", "utility", "rebuf ratio", "switch rate"]
    rows = [
        [
            name,
            str(s.qoe),
            str(s.utility),
            str(s.rebuffer_ratio),
            str(s.switching_rate),
        ]
        for name, s in summaries.items()
    ]
    return format_table(headers, rows)


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
) -> str:
    """A table with one x column and one column per named series.

    The tabular equivalent of the paper's line plots (Figures 7, 8, 11).
    """
    headers = [x_label] + list(series)
    n = len(xs)
    for name, ys in series.items():
        if len(ys) != n:
            raise ValueError(f"series {name!r} length differs from x axis")
    rows = [
        [xs[i]] + [series[name][i] for name in series] for i in range(n)
    ]
    return format_table(headers, rows)
