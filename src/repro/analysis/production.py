"""Production A/B simulation: device families and relative deltas (§6.3).

The paper's production experiment ran SODA against a fine-tuned baseline on
three device families — HTML5 browsers, smart TVs, and set-top boxes — each
with its own network volatility mix (browsers see the most volatile links).
Without the Prime Video fleet (DESIGN.md substitution #6) we model each
family as a throughput-generator mix and reproduce Figure 13's *relative*
metric changes: viewing duration (via the engagement model), mean bitrate,
rebuffering ratio, and switching rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..sim.network import ThroughputTrace
from ..sim.player import SessionResult
from ..traces.synthetic import MarkovLognormalGenerator, Regime
from .engagement import EngagementModel

__all__ = ["DeviceFamily", "DEVICE_FAMILIES", "ProductionDeltas", "relative_deltas"]


@dataclass(frozen=True)
class DeviceFamily:
    """One production device family and its network environment.

    Attributes:
        name: family label, as in Figure 13.
        mean_mbps: typical downlink for the family, Mb/s.
        rsd: relative standard deviation of the family's links.
        outage_prone: whether the family sees short outage episodes
            (HTML5 browsers on Wi-Fi/cellular do; wired set-top boxes
            mostly do not).
    """

    name: str
    mean_mbps: float
    rsd: float
    outage_prone: bool

    def generator(self) -> MarkovLognormalGenerator:
        """Build the family's throughput generator."""
        regimes = [Regime(1.0, 1e9)]
        if self.outage_prone:
            regimes = [Regime(1.15, 45.0), Regime(0.35, 8.0)]
        return MarkovLognormalGenerator(
            target_mean=self.mean_mbps,
            target_rsd=self.rsd,
            regimes=regimes,
            ar_coefficient=0.94,
            name=self.name,
        )

    def traces(
        self, n_sessions: int, duration: float = 600.0, seed: int = 0
    ) -> List[ThroughputTrace]:
        return self.generator().dataset(n_sessions, duration, seed=seed)


#: the three families of §6.3, volatility ordered as the paper describes
DEVICE_FAMILIES = (
    DeviceFamily("html5", mean_mbps=18.0, rsd=0.95, outage_prone=True),
    DeviceFamily("smart-tv", mean_mbps=35.0, rsd=0.45, outage_prone=False),
    DeviceFamily("set-top-box", mean_mbps=25.0, rsd=0.60, outage_prone=False),
)


@dataclass(frozen=True)
class ProductionDeltas:
    """Figure 13's four relative changes (SODA vs the production baseline).

    Positive viewing-duration and bitrate deltas are improvements; negative
    rebuffering and switching deltas are improvements.
    """

    family: str
    viewing_duration: float
    bitrate: float
    rebuffer_ratio: float
    switching_rate: float


def _mean_bitrate(results: Sequence[SessionResult]) -> float:
    values = [np.mean(r.bitrates) for r in results if r.num_segments]
    return float(np.mean(values))


def _mean(values: Sequence[float]) -> float:
    return float(np.mean(np.asarray(values, dtype=float)))


def relative_deltas(
    family: DeviceFamily,
    soda_results: Sequence[SessionResult],
    baseline_results: Sequence[SessionResult],
    engagement: EngagementModel = EngagementModel(),
) -> ProductionDeltas:
    """Compute Figure 13's relative metric changes for one device family.

    Rebuffering and switching deltas are relative changes of the means;
    viewing duration comes from the engagement model applied to the mean
    switching/rebuffering of each arm.
    """
    if not soda_results or not baseline_results:
        raise ValueError("both arms need at least one session")

    def switch_rate(r: SessionResult) -> float:
        return r.switch_count / max(r.num_segments - 1, 1)

    def rebuf_ratio(r: SessionResult) -> float:
        return r.rebuffer_time / max(r.session_duration, 1e-9)

    soda_switch = _mean([switch_rate(r) for r in soda_results])
    base_switch = _mean([switch_rate(r) for r in baseline_results])
    soda_rebuf = _mean([rebuf_ratio(r) for r in soda_results])
    base_rebuf = _mean([rebuf_ratio(r) for r in baseline_results])

    def rel(a: float, b: float) -> float:
        if b <= 1e-12:
            return 0.0 if a <= 1e-12 else float("inf")
        return a / b - 1.0

    return ProductionDeltas(
        family=family.name,
        viewing_duration=engagement.relative_duration_change(
            soda_switch, soda_rebuf, base_switch, base_rebuf
        ),
        bitrate=rel(_mean_bitrate(soda_results), _mean_bitrate(baseline_results)),
        rebuffer_ratio=rel(soda_rebuf, base_rebuf),
        switching_rate=rel(soda_switch, base_switch),
    )
