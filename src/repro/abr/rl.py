"""Tabular-RL ABR controller: the CausalSimRL / Pensieve substitute.

CausalSimRL [60] is a Pensieve-style [22] reinforcement-learning controller
trained with CausalSim for the Puffer platform.  Training that network is
out of scope offline (DESIGN.md substitution #5); this module provides the
closest laptop-scale equivalent: a tabular Q-learning agent over a
discretised (buffer, throughput, previous-rung) state, trained in the very
simulator of this package with the standard Pensieve reward

    utility − w_rebuf · rebuffer_seconds − w_switch · |Δutility|.

The substitute keeps the properties the paper reports for CausalSimRL:
competitive utility and rebuffering after training, a high switching rate,
and no way to tune one QoE component without retraining.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..prediction.base import ThroughputSample
from .base import AbrController, PlayerObservation

__all__ = ["QTableController", "encode_state", "train_q_controller"]

State = Tuple[int, int, int]


def encode_state(
    buffer_level: float,
    throughput: Optional[float],
    previous_quality: Optional[int],
    max_buffer: float,
    min_bitrate: float,
    max_bitrate: float,
    buffer_buckets: int = 8,
    throughput_buckets: int = 8,
) -> State:
    """Discretise raw observation features into a Q-table state.

    This is the single state-space contract shared by the RL agent, the
    behavior-cloning pipeline (``repro.learn``), and distillation: buffer
    level in ``buffer_buckets`` linear buckets of ``max_buffer``,
    throughput in ``throughput_buckets`` log-spaced buckets across
    1/4x .. 4x of the ladder span, previous rung verbatim (``-1`` when the
    session has not downloaded a segment yet).  ``throughput`` may be
    ``None`` (no history yet) and falls back to ``min_bitrate``.
    """
    # Injected faults can corrupt observations (NaN/inf throughput samples,
    # see repro.faults); clamp to safe values rather than crash the agent.
    if not math.isfinite(buffer_level):
        buffer_level = 0.0
    frac = min(max(buffer_level / max_buffer, 0.0), 1.0)
    b = min(int(frac * buffer_buckets), buffer_buckets - 1)
    if throughput is None or not math.isfinite(throughput) or throughput <= 0.0:
        throughput = min_bitrate
    lo = 0.25 * min_bitrate
    hi = 4.0 * max_bitrate
    ratio = min(max(throughput, lo), hi) / lo
    t = int(math.log(ratio) / math.log(hi / lo) * throughput_buckets)
    t = min(t, throughput_buckets - 1)
    p = -1 if previous_quality is None else int(previous_quality)
    return (b, t, p)


@dataclass
class QTableController(AbrController):
    """Q-learning ABR agent over a discretised state space.

    States are ``(buffer bucket, throughput bucket, previous rung)``;
    actions are rungs.  In training mode the agent explores ε-greedily and
    updates its table online from the rewards implied by consecutive
    observations; in evaluation mode it is a frozen greedy policy.

    Attributes:
        buffer_buckets: number of buffer-level buckets.
        throughput_buckets: number of log-throughput buckets.
        rebuffer_weight: reward weight on rebuffered seconds.
        switch_weight: reward weight on |Δutility|.
    """

    buffer_buckets: int = 8
    throughput_buckets: int = 8
    rebuffer_weight: float = 10.0
    switch_weight: float = 1.0
    learning_rate: float = 0.15
    discount: float = 0.9
    epsilon: float = 0.0
    seed: int = 0
    name: str = "rl"

    q_table: Dict[Tuple[State, int], float] = field(default_factory=dict)
    training: bool = False
    #: optional teacher controller: during training, with probability
    #: ``anchor_epsilon`` the agent takes the teacher's action instead of
    #: its own (SABR's ε-style anchor, keeping fine-tuning near the
    #: behavior-cloned policy).  Ignored outside training.
    teacher: Optional[AbrController] = None
    anchor_epsilon: float = 0.0

    def __post_init__(self) -> None:
        super().__init__(predictor=None)
        self._rng = random.Random(self.seed)
        self._prev: Optional[Tuple[State, int, float, float]] = None

    # ------------------------------------------------------------------
    def reset(self) -> None:
        super().reset()
        self._prev = None

    def encode(self, obs: PlayerObservation) -> State:
        """Discretise an observation into a table state."""
        return encode_state(
            obs.buffer_level,
            obs.last_throughput,
            obs.previous_quality,
            obs.max_buffer,
            obs.ladder.min_bitrate,
            obs.ladder.max_bitrate,
            self.buffer_buckets,
            self.throughput_buckets,
        )

    def q_value(self, state: State, action: int) -> float:
        return self.q_table.get((state, action), 0.0)

    # ------------------------------------------------------------------
    def select_quality(self, obs: PlayerObservation) -> Optional[int]:
        state = self.encode(obs)
        levels = obs.ladder.levels

        if self.training and self._prev is not None:
            self._learn(obs, state, levels)

        action: Optional[int] = None
        if (
            self.training
            and self.teacher is not None
            and self._rng.random() < self.anchor_epsilon
        ):
            taught = self.teacher.select_quality(obs)
            if taught is not None and 0 <= taught < levels:
                action = int(taught)
        if action is None and self.training and self._rng.random() < self.epsilon:
            action = self._rng.randrange(levels)
        if action is None:
            action = max(
                range(levels), key=lambda a: (self.q_value(state, a), -a)
            )

        if self.training:
            self._prev = (
                state,
                action,
                obs.rebuffer_time,
                obs.ladder.log_utility(action),
            )
        return action

    # ------------------------------------------------------------------
    def _learn(self, obs: PlayerObservation, state: State, levels: int) -> None:
        prev_state, prev_action, prev_rebuffer, prev_utility = self._prev
        rebuffer_delta = max(obs.rebuffer_time - prev_rebuffer, 0.0)
        switch = 0.0
        if obs.previous_quality is not None and prev_state[2] >= 0:
            switch = abs(
                obs.ladder.log_utility(obs.previous_quality)
                - obs.ladder.log_utility(prev_state[2])
            )
        reward = (
            prev_utility
            - self.rebuffer_weight * rebuffer_delta / obs.ladder.segment_duration
            - self.switch_weight * switch
        )
        best_next = max(self.q_value(state, a) for a in range(levels))
        key = (prev_state, prev_action)
        old = self.q_table.get(key, 0.0)
        target = reward + self.discount * best_next
        self.q_table[key] = old + self.learning_rate * (target - old)


def train_q_controller(
    ladder,
    traces: Sequence,
    player_config=None,
    episodes: int = 60,
    epsilon_start: float = 0.4,
    epsilon_end: float = 0.02,
    seed: int = 0,
    q_init: Optional[Dict[Tuple[State, int], float]] = None,
    teacher: Optional[AbrController] = None,
    anchor_epsilon: float = 0.0,
    **agent_kwargs,
) -> QTableController:
    """Train a :class:`QTableController` in the package's own simulator.

    Args:
        ladder: encoding ladder the agent will stream.
        traces: training traces; episodes cycle through them.
        player_config: player parameters used during training.
        episodes: number of training sessions.
        epsilon_start: initial exploration rate, decayed linearly.
        epsilon_end: final exploration rate.
        seed: RNG seed for exploration.
        q_init: warm-start Q-values (e.g. from a behavior-cloned policy,
            see :func:`repro.learn.bc.fit_bc`); copied, never mutated.
        teacher: anchor controller — with probability ``anchor_epsilon``
            the agent follows the teacher's action during training
            (SABR-style fine-tuning near the demonstrated policy).
        anchor_epsilon: probability of deferring to ``teacher`` per step.
        **agent_kwargs: forwarded to :class:`QTableController`.

    Returns:
        The trained agent, frozen (``training=False``, ε=0, no teacher).
    """
    from ..sim.player import simulate_session

    if not traces:
        raise ValueError("need at least one training trace")
    agent = QTableController(
        seed=seed,
        teacher=teacher,
        anchor_epsilon=anchor_epsilon,
        **agent_kwargs,
    )
    if q_init:
        agent.q_table.update(q_init)
    agent.training = True
    for episode in range(episodes):
        frac = episode / max(episodes - 1, 1)
        agent.epsilon = epsilon_start + (epsilon_end - epsilon_start) * frac
        trace = traces[episode % len(traces)]
        if teacher is not None:
            teacher.reset()
        simulate_session(agent, trace, ladder, player_config)
    agent.training = False
    agent.epsilon = 0.0
    agent.teacher = None
    agent.anchor_epsilon = 0.0
    return agent
