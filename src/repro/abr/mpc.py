"""MPC and RobustMPC: model-predictive ABR control (Yin et al. [17]).

MPC maximises a segment-based QoE over a K-segment horizon:

    Σ_k  u(r_k) − μ · rebuffer_k − λ · |u(r_k) − u(r_{k-1})|

where u is the normalised log utility, rebuffering is predicted from the
harmonic-mean throughput estimate, and the first decision of the best plan
is committed.  ``RobustMPC`` divides the throughput estimate by
``1 + max recent relative error`` — the robustness fix from the same paper.

The search is exhaustive over |R|^K sequences with an admissible
branch-and-bound cut (remaining utility is bounded by the horizon length),
mirroring the reference implementation's cost profile that §2 of the paper
criticises.  Section 2's Figure 3 pathology — tolerating rebuffering to
avoid a switch — emerges from this objective when the buffer runs dry.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Optional, Tuple

from ..prediction.base import ThroughputPredictor, ThroughputSample
from ..prediction.moving_average import HarmonicMeanPredictor
from .base import AbrController, PlayerObservation

__all__ = ["MpcController", "RobustMpcController"]


class MpcController(AbrController):
    """MPC over a K-segment horizon with a harmonic-mean predictor.

    Args:
        predictor: throughput predictor (harmonic mean of the last 5
            downloads by default, as in [17]).
        horizon: number of future segments planned (K = 5 in the paper).
        rebuffer_penalty: μ — QoE lost per second of predicted rebuffering.
        switch_penalty: λ — QoE lost per unit of |Δutility|.
    """

    name = "mpc"
    robust = False

    def __init__(
        self,
        predictor: Optional[ThroughputPredictor] = None,
        horizon: int = 5,
        rebuffer_penalty: float = 3.0,
        switch_penalty: float = 1.0,
    ) -> None:
        super().__init__(predictor or HarmonicMeanPredictor(window=5))
        if horizon < 1:
            raise ValueError("horizon must be at least 1")
        self.horizon = horizon
        self.rebuffer_penalty = rebuffer_penalty
        self.switch_penalty = switch_penalty
        self._errors: Deque[float] = deque(maxlen=5)
        self._last_prediction: Optional[float] = None

    def reset(self) -> None:
        super().reset()
        self._errors.clear()
        self._last_prediction = None

    def on_download(self, sample: ThroughputSample) -> None:
        if self._last_prediction is not None and sample.throughput > 0:
            err = abs(self._last_prediction - sample.throughput) / sample.throughput
            self._errors.append(err)
        super().on_download(sample)

    # ------------------------------------------------------------------
    def select_quality(self, obs: PlayerObservation) -> Optional[int]:
        throughput = self._predicted_throughput(obs)
        self._last_prediction = throughput
        if self.robust and self._errors:
            throughput /= 1.0 + max(self._errors)
        plan = self._best_plan(obs, throughput)
        return plan[0]

    # ------------------------------------------------------------------
    def _best_plan(
        self, obs: PlayerObservation, throughput: float
    ) -> List[int]:
        """Exhaustive horizon search, returns the best rung sequence."""
        ladder = obs.ladder
        seg_len = ladder.segment_duration
        utilities = ladder.utilities()
        throughput = max(throughput, 1e-6)

        best: Tuple[float, List[int]] = (-math.inf, [0])

        def rec(
            k: int,
            buffer_level: float,
            prev_utility: Optional[float],
            qoe: float,
            plan: List[int],
        ) -> None:
            nonlocal best
            if k == self.horizon:
                if qoe > best[0]:
                    best = (qoe, list(plan))
                return
            # Admissible bound: future QoE gain is at most one utility unit
            # per remaining segment (penalties only subtract).
            if qoe + (self.horizon - k) * 1.0 <= best[0]:
                return
            for quality in range(ladder.levels):
                size = ladder.segment_size(quality, obs.segment_index + k)
                dl_time = size / throughput
                rebuffer = max(dl_time - buffer_level, 0.0)
                next_buffer = max(buffer_level - dl_time, 0.0) + seg_len
                next_buffer = min(next_buffer, obs.max_buffer)
                step = utilities[quality] - self.rebuffer_penalty * rebuffer
                if prev_utility is not None:
                    step -= self.switch_penalty * abs(
                        utilities[quality] - prev_utility
                    )
                plan.append(quality)
                rec(k + 1, next_buffer, utilities[quality], qoe + step, plan)
                plan.pop()

        prev_utility = (
            None
            if obs.previous_quality is None
            else float(utilities[obs.previous_quality])
        )
        rec(0, obs.buffer_level, prev_utility, 0.0, [])
        return best[1]


class RobustMpcController(MpcController):
    """RobustMPC: MPC with the max-recent-error throughput discount [17]."""

    name = "robustmpc"
    robust = True
