"""PID-based rate adaptation (Qin et al. [23]).

The paper's §2 cites classical PID control as one of the approaches the
streaming literature kept returning to.  This controller regulates the
buffer level around a setpoint with a discrete PID loop whose output scales
the predicted throughput into a target bitrate:

    e_t   = x_target − x_t
    u_t   = Kp·e_t + Ki·Σe + Kd·(e_t − e_{t−1})
    rate  = ω̂ · exp(−u_t · k)

A positive error (buffer below target) pushes the rate below the predicted
throughput so the buffer refills, and vice versa.  It is a reasonable,
tunable baseline — and a demonstration of why pure feedback control without
switching costs produces jittery bitrates.
"""

from __future__ import annotations

import math
from typing import Optional

from ..prediction.base import ThroughputPredictor
from ..prediction.ema import EmaPredictor
from .base import AbrController, PlayerObservation

__all__ = ["PidController"]


class PidController(AbrController):
    """Discrete PID buffer regulator mapped onto the bitrate ladder.

    Args:
        predictor: throughput predictor (EMA by default).
        kp: proportional gain.
        ki: integral gain (with anti-windup clamping).
        kd: derivative gain.
        setpoint_fraction: buffer target as a fraction of the buffer cap.
        response: scale of the exponential rate response to the PID output.
    """

    name = "pid"

    def __init__(
        self,
        predictor: Optional[ThroughputPredictor] = None,
        kp: float = 0.15,
        ki: float = 0.01,
        kd: float = 0.1,
        setpoint_fraction: float = 0.6,
        response: float = 1.0,
    ) -> None:
        super().__init__(predictor or EmaPredictor())
        if not 0 < setpoint_fraction <= 1:
            raise ValueError("setpoint fraction must be in (0, 1]")
        if response <= 0:
            raise ValueError("response must be positive")
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.setpoint_fraction = setpoint_fraction
        self.response = response
        self._integral = 0.0
        self._last_error: Optional[float] = None

    def reset(self) -> None:
        super().reset()
        self._integral = 0.0
        self._last_error = None

    # ------------------------------------------------------------------
    def select_quality(self, obs: PlayerObservation) -> Optional[int]:
        setpoint = self.setpoint_fraction * obs.max_buffer
        error = (setpoint - obs.buffer_level) / obs.max_buffer

        self._integral += error
        # Anti-windup: bound the integral contribution.
        self._integral = max(min(self._integral, 10.0), -10.0)
        derivative = 0.0
        if self._last_error is not None:
            derivative = error - self._last_error
        self._last_error = error

        control = (
            self.kp * error
            + self.ki * self._integral
            + self.kd * derivative
        )
        throughput = self._predicted_throughput(obs)
        target_rate = throughput * math.exp(-self.response * control)
        return obs.ladder.quality_for_bitrate(target_rate)
