"""BBA: the buffer-based rate map of Huang et al. [15].

BBA-0 maps the buffer level linearly onto the bitrate range between a
*reservoir* (below which the lowest rung is used) and a *cushion* (above
which the highest rung is used), with hysteresis: the rung only changes
when the mapped rate crosses the next rung up (or the previous rung down).
The paper cites BBA in related work (§7.1) as the canonical pure
buffer-based design; it is included here to round out the baseline family.
"""

from __future__ import annotations

from typing import Optional

from .base import AbrController, PlayerObservation

__all__ = ["BbaController"]


class BbaController(AbrController):
    """BBA-0 buffer-based controller with the standard hysteresis.

    Args:
        reservoir: buffer level (seconds) below which the lowest rung is
            always chosen; when None, 20% of the buffer cap.
        cushion: buffer span (seconds) over which the rate map climbs from
            the lowest to the highest rung; when None, 60% of the cap.
    """

    name = "bba"

    def __init__(
        self,
        reservoir: Optional[float] = None,
        cushion: Optional[float] = None,
    ) -> None:
        super().__init__(predictor=None)
        if reservoir is not None and reservoir <= 0:
            raise ValueError("reservoir must be positive")
        if cushion is not None and cushion <= 0:
            raise ValueError("cushion must be positive")
        self._reservoir = reservoir
        self._cushion = cushion

    # ------------------------------------------------------------------
    def rate_map(self, buffer_level: float, ladder, max_buffer: float) -> float:
        """The linear buffer→rate map f(B) of BBA-0."""
        reservoir = self._reservoir
        if reservoir is None:
            reservoir = 0.2 * max_buffer
        cushion = self._cushion
        if cushion is None:
            cushion = 0.6 * max_buffer
        if buffer_level <= reservoir:
            return ladder.min_bitrate
        if buffer_level >= reservoir + cushion:
            return ladder.max_bitrate
        fraction = (buffer_level - reservoir) / cushion
        return ladder.min_bitrate + fraction * (
            ladder.max_bitrate - ladder.min_bitrate
        )

    def select_quality(self, obs: PlayerObservation) -> Optional[int]:
        ladder = obs.ladder
        mapped = self.rate_map(obs.buffer_level, ladder, obs.max_buffer)
        prev = obs.previous_quality
        if prev is None:
            return ladder.quality_for_bitrate(mapped)

        # Hysteresis: only move up when the map clears the NEXT rung, and
        # only move down when the map falls below the CURRENT rung.
        rate_prev = ladder.bitrate(prev)
        if prev + 1 < ladder.levels and mapped >= ladder.bitrate(prev + 1):
            return ladder.quality_for_bitrate(mapped)
        if mapped < rate_prev:
            # Highest rung strictly below the mapped rate, floor at 0.
            quality = ladder.quality_for_bitrate(mapped)
            return min(quality, prev)
        return prev
