"""Dynamic: the production BOLA variant that is dash.js's default ABR [44].

Dynamic switches between two modes with hysteresis:

* **throughput mode** when the buffer is low — follow the (EMA-) predicted
  bandwidth with a safety factor;
* **buffer mode (BOLA)** once the buffer is comfortable.

On top of the mode switch it carries two production heuristics the paper
calls out (§6.1.2): a low-buffer safety rule (drop to the lowest rung when
less than one segment is buffered) and a switching-avoidance rule (when BOLA
wants to step *up* beyond both the previous rung and what the measured
throughput supports, hold the previous rung instead — dash.js's
"insufficient buffer"/steady-state damping).
"""

from __future__ import annotations

from typing import Optional

from ..prediction.base import ThroughputPredictor
from ..prediction.ema import EmaPredictor
from .base import AbrController, PlayerObservation
from .bola import BolaController
from .rate import rate_rule_quality

__all__ = ["DynamicController"]


class DynamicController(AbrController):
    """dash.js ``Dynamic``: BOLA + throughput mode + safety heuristics.

    Args:
        predictor: throughput predictor for throughput mode (EMA default).
        enter_buffer_mode: buffer level (seconds) above which BOLA takes
            over; when None, ``0.5 × max_buffer``.
        exit_buffer_mode: buffer level below which throughput mode resumes;
            when None, ``0.35 × max_buffer`` (hysteresis gap).
        safety_factor: throughput-mode safety margin.
        bola: optionally a pre-configured BOLA instance for buffer mode.
    """

    name = "dynamic"

    def __init__(
        self,
        predictor: Optional[ThroughputPredictor] = None,
        enter_buffer_mode: Optional[float] = None,
        exit_buffer_mode: Optional[float] = None,
        safety_factor: float = 0.9,
        bola: Optional[BolaController] = None,
    ) -> None:
        super().__init__(predictor or EmaPredictor())
        self._enter = enter_buffer_mode
        self._exit = exit_buffer_mode
        self.safety_factor = safety_factor
        self.bola = bola or BolaController(allow_deferral=True)
        self._buffer_mode = False

    def reset(self) -> None:
        super().reset()
        self.bola.reset()
        self._buffer_mode = False

    # ------------------------------------------------------------------
    def select_quality(self, obs: PlayerObservation) -> Optional[int]:
        enter = self._enter if self._enter is not None else 0.5 * obs.max_buffer
        exit_ = self._exit if self._exit is not None else 0.35 * obs.max_buffer
        if exit_ >= enter:
            exit_ = 0.7 * enter

        # Mode switch with hysteresis.
        if self._buffer_mode and obs.buffer_level < exit_:
            self._buffer_mode = False
        elif not self._buffer_mode and obs.buffer_level >= enter:
            self._buffer_mode = True

        # Low-buffer safety heuristic: under one segment buffered while
        # playing, take the lowest rung unconditionally.
        if obs.playing and obs.buffer_level < obs.ladder.segment_duration:
            return 0

        throughput = self._predicted_throughput(obs)
        tput_quality = rate_rule_quality(
            throughput, obs.ladder, self.safety_factor
        )

        if not self._buffer_mode:
            return tput_quality

        bola_quality = self.bola.select_quality(obs)
        if bola_quality is None:
            return None

        # Switching-avoidance: below BOLA's top decision threshold, damp
        # upward jumps beyond throughput support (dash.js's
        # insufficient-buffer rule).  With a near-full buffer the rule
        # trusts the buffer and lets BOLA climb, so Dynamic still reaches
        # the top rungs — the paper's "medium" switching profile.
        prev = obs.previous_quality
        params = self.bola.parameters_for(obs.ladder, obs.max_buffer)
        if (
            prev is not None
            and obs.buffer_level < params.buffer_target
            and bola_quality > prev
            and bola_quality > tput_quality
        ):
            return max(prev, tput_quality)
        return bola_quality
