"""Fugu-like controller: stochastic MPC over a throughput belief.

Fugu [46] pairs an MPC-style controller with a *probabilistic* transmission
time predictor learned in situ on Puffer.  The learned DNN cannot be
retrained offline here (see DESIGN.md substitution #4), so this controller
keeps Fugu's decision structure — maximise *expected* QoE over the belief —
and replaces the DNN with an empirical Gaussian belief from a sliding
window (:class:`repro.prediction.stochastic.StochasticPredictor`).

The expectation is evaluated with a three-point quadrature over the belief
(μ−σ, μ, μ+σ with weights ¼, ½, ¼), and the controller plans as an
expectimax policy tree rather than a fixed sequence, which is how hedging
against slow outcomes enters the decision.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ..prediction.stochastic import StochasticPredictor, ThroughputDistribution
from .base import AbrController, PlayerObservation

__all__ = ["FuguController"]

#: three-point quadrature on a Gaussian belief
_SCENARIOS: Tuple[Tuple[float, float], ...] = (
    (-1.0, 0.25),
    (0.0, 0.50),
    (1.0, 0.25),
)


class FuguController(AbrController):
    """Fugu-like stochastic MPC.

    Args:
        predictor: a :class:`StochasticPredictor`; a default 8-download
            window is created when omitted.
        horizon: policy-tree depth in segments.
        rebuffer_penalty: QoE lost per second of expected rebuffering.
        switch_penalty: QoE lost per unit of |Δutility|.
    """

    name = "fugu"

    def __init__(
        self,
        predictor: Optional[StochasticPredictor] = None,
        horizon: int = 3,
        rebuffer_penalty: float = 3.0,
        switch_penalty: float = 1.0,
    ) -> None:
        super().__init__(predictor or StochasticPredictor(window=8))
        if horizon < 1:
            raise ValueError("horizon must be at least 1")
        self.horizon = horizon
        self.rebuffer_penalty = rebuffer_penalty
        self.switch_penalty = switch_penalty

    # ------------------------------------------------------------------
    def select_quality(self, obs: PlayerObservation) -> Optional[int]:
        belief = self._belief(obs)
        ladder = obs.ladder
        utilities = ladder.utilities()
        seg_len = ladder.segment_duration

        def value(
            k: int, buffer_level: float, prev_utility: Optional[float]
        ) -> float:
            if k == self.horizon:
                return 0.0
            best = -math.inf
            for quality in range(ladder.levels):
                size = ladder.segment_size(quality, obs.segment_index + k)
                expected = 0.0
                for sigmas, weight in _SCENARIOS:
                    throughput = max(
                        belief.mean + sigmas * belief.std, 1e-6
                    )
                    dl_time = size / throughput
                    rebuffer = max(dl_time - buffer_level, 0.0)
                    nxt = min(
                        max(buffer_level - dl_time, 0.0) + seg_len,
                        obs.max_buffer,
                    )
                    step = utilities[quality] - self.rebuffer_penalty * rebuffer
                    if prev_utility is not None:
                        step -= self.switch_penalty * abs(
                            utilities[quality] - prev_utility
                        )
                    expected += weight * (
                        step + value(k + 1, nxt, float(utilities[quality]))
                    )
                best = max(best, expected)
            return best

        prev_utility = (
            None
            if obs.previous_quality is None
            else float(utilities[obs.previous_quality])
        )
        best_quality = 0
        best_value = -math.inf
        for quality in range(ladder.levels):
            size = ladder.segment_size(quality, obs.segment_index)
            expected = 0.0
            for sigmas, weight in _SCENARIOS:
                throughput = max(belief.mean + sigmas * belief.std, 1e-6)
                dl_time = size / throughput
                rebuffer = max(dl_time - obs.buffer_level, 0.0)
                nxt = min(
                    max(obs.buffer_level - dl_time, 0.0) + seg_len,
                    obs.max_buffer,
                )
                step = utilities[quality] - self.rebuffer_penalty * rebuffer
                if prev_utility is not None:
                    step -= self.switch_penalty * abs(
                        utilities[quality] - prev_utility
                    )
                expected += weight * (
                    step + value(1, nxt, float(utilities[quality]))
                )
            if expected > best_value:
                best_value = expected
                best_quality = quality
        return best_quality

    # ------------------------------------------------------------------
    def _belief(self, obs: PlayerObservation) -> ThroughputDistribution:
        belief = None
        if isinstance(self.predictor, StochasticPredictor):
            belief = self.predictor.predict_distribution(obs.wall_time)
        if belief is None or belief.mean <= 0:
            fallback = obs.last_throughput or obs.ladder.min_bitrate
            belief = ThroughputDistribution(fallback, 0.25 * fallback)
        return belief
