"""ABR controller interface.

Controllers are pure decision functions: the player simulator hands them a
:class:`repro.sim.player.PlayerObservation` (re-exported here) before every
segment download and they answer with a rung index (0 = lowest bitrate) or
``None`` to defer the download — SODA uses ``None`` to avoid overflowing
the buffer (Figure 5's blank region).
"""

from __future__ import annotations

import abc
from typing import Optional

from ..prediction.base import ThroughputPredictor, ThroughputSample
from ..sim.player import PlayerObservation

__all__ = ["PlayerObservation", "AbrController"]


class AbrController(abc.ABC):
    """Base class for every ABR controller in the package.

    Controllers that consume throughput predictions hold a
    :class:`ThroughputPredictor`; the simulator forwards every completed
    download to :meth:`on_download`, which updates the predictor.
    """

    #: Human-readable name used in result tables.
    name: str = "abr"

    def __init__(self, predictor: Optional[ThroughputPredictor] = None) -> None:
        self.predictor = predictor

    def reset(self) -> None:
        """Reset controller state at the start of a session."""
        if self.predictor is not None:
            self.predictor.reset()

    def on_download(self, sample: ThroughputSample) -> None:
        """Observe one completed segment download."""
        if self.predictor is not None:
            self.predictor.update(sample)

    @abc.abstractmethod
    def select_quality(self, obs: PlayerObservation) -> Optional[int]:
        """Choose a rung for the next segment, or ``None`` to defer.

        Returning ``None`` makes the player wait a short idle step (buffer
        drains, wall time advances) before asking again.
        """

    # ------------------------------------------------------------------
    def _predicted_throughput(self, obs: PlayerObservation) -> float:
        """Convenience: scalar prediction with a safe fallback.

        Falls back to the last measured throughput, then to the lowest
        ladder rung, when the predictor has no history yet.
        """
        estimate = 0.0
        if self.predictor is not None:
            estimate = self.predictor.predict_scalar(obs.wall_time)
        if estimate <= 0 and obs.last_throughput is not None:
            estimate = obs.last_throughput
        if estimate <= 0:
            estimate = obs.ladder.min_bitrate
        return estimate
