"""ResilientController: a graceful-degradation wrapper for any controller.

Production ABR stacks never let the optimizer take the player down: a
crashed solver, an over-budget solve, a NaN-poisoned throughput estimate, or
an out-of-range rung must all degrade to something safe.  This wrapper
bolts that armor onto any :class:`AbrController`:

* **observation sanitizing** — non-finite buffer/clock values are clamped
  and corrupted throughput samples (NaN/inf/zero/negative) are repaired or
  dropped before the inner controller or its predictor sees them;
* **prediction clamping** — the inner controller's predictor is wrapped so
  NaN/inf forecasts collapse to a safe 0 (which the controllers' own
  fallbacks then handle);
* **exception containment** — an inner ``reset``/``on_download``/
  ``select_quality`` that raises is caught and the decision falls back;
* **rung validation** — anything that is not an integer rung inside the
  ladder falls back;
* **solve-time watchdog** — a decision that takes longer than
  ``solve_timeout`` wall seconds trips the watchdog; after
  ``max_watchdog_trips`` trips the inner controller is retired for the
  rest of the session;
* **defer-storm guard** — more than ``max_consecutive_defers`` successive
  ``None`` answers forces a fallback decision, so the wrapper can never
  livelock the player.

The fallback policy is buffer-based (BBA by default) because pure
buffer-based control needs no throughput signal at all — exactly the
degradation BOLA argues for when estimates go bad.  Every intervention is
counted (``fallback_decisions``, ``caught_exceptions``,
``sanitized_observations``, ``watchdog_trips``) and the player copies
``fallback_decisions`` into :class:`~repro.sim.player.SessionResult`.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Callable, Optional

import numpy as np

from ..prediction.base import ThroughputPredictor, ThroughputSample
from .base import AbrController, PlayerObservation
from .bba import BbaController

__all__ = [
    "ResilientController",
    "sanitize_observation",
    "sanitize_sample",
    "validate_rung",
]


# ----------------------------------------------------------------------
# Shared armor helpers.  These are module-level (not methods) because the
# decision service (:mod:`repro.service`) applies the same sanitizing and
# rung validation per request without instantiating a wrapper controller.
# ----------------------------------------------------------------------
def validate_rung(quality, levels: int) -> Optional[int]:
    """Return ``quality`` as a checked int rung, or ``None`` if unusable.

    Rejects non-integers, non-finite floats, floats with a fractional
    part, and anything outside ``[0, levels)``.
    """
    try:
        rung = int(quality)
    except (TypeError, ValueError, OverflowError):
        return None
    if isinstance(quality, float):
        if not math.isfinite(quality) or quality != rung:
            return None
    if not 0 <= rung < levels:
        return None
    return rung


def sanitize_sample(sample: ThroughputSample) -> Optional[ThroughputSample]:
    """Repair a corrupted download sample, or drop a hopeless one.

    Non-finite timings/sizes are unrecoverable (``None``); a NaN/inf/zero/
    negative throughput is recomputed from the transfer itself, which the
    client SDK always knows.
    """
    if (
        not math.isfinite(sample.start)
        or not math.isfinite(sample.duration)
        or not math.isfinite(sample.size)
        or sample.duration <= 0
        or sample.size < 0
    ):
        return None
    if math.isfinite(sample.throughput) and sample.throughput > 0:
        return sample
    rebuilt = sample.size / sample.duration
    if not math.isfinite(rebuilt) or rebuilt <= 0:
        return None
    return ThroughputSample(
        start=sample.start,
        duration=sample.duration,
        size=sample.size,
        throughput=rebuilt,
    )


def sanitize_observation(obs: PlayerObservation) -> PlayerObservation:
    """Clamp non-finite scalars and strip garbage history samples.

    Returns ``obs`` itself when nothing needed repair, so callers can
    count interventions with an identity check.
    """
    changes = {}
    if not math.isfinite(obs.buffer_level) or obs.buffer_level < 0:
        changes["buffer_level"] = 0.0
    elif obs.buffer_level > obs.max_buffer > 0:
        changes["buffer_level"] = obs.max_buffer
    if not math.isfinite(obs.wall_time) or obs.wall_time < 0:
        changes["wall_time"] = 0.0
    if not math.isfinite(obs.rebuffer_time) or obs.rebuffer_time < 0:
        changes["rebuffer_time"] = 0.0

    clean_history = []
    dropped = False
    for sample in obs.history:
        clean = sanitize_sample(sample)
        if clean is None:
            dropped = True
            continue
        if clean is not sample:
            dropped = True
        clean_history.append(clean)
    if dropped:
        changes["history"] = tuple(clean_history)

    if not changes:
        return obs
    return dataclasses.replace(obs, **changes)


class _SafePredictor(ThroughputPredictor):
    """Clamp a predictor's outputs to finite, non-negative values."""

    def __init__(self, inner: ThroughputPredictor) -> None:
        self.inner = inner
        self.name = f"safe({inner.name})"

    def reset(self) -> None:
        self.inner.reset()

    def update(self, sample: ThroughputSample) -> None:
        self.inner.update(sample)

    def predict_scalar(self, now: float) -> float:
        try:
            value = self.inner.predict_scalar(now)
        except Exception:
            return 0.0
        if not math.isfinite(value) or value < 0:
            return 0.0
        return value

    def predict(self, now: float, horizon: int, dt: float) -> np.ndarray:
        try:
            values = self.inner.predict(now, horizon, dt)
        except Exception:
            return np.zeros(horizon)
        values = np.asarray(values, dtype=float)
        return np.clip(np.nan_to_num(values, nan=0.0, posinf=0.0), 0.0, None)

    def __getattr__(self, name):
        # Delegate extras like the oracle family's ``attach_trace``.
        return getattr(self.inner, name)


class ResilientController(AbrController):
    """Wrap ``inner`` so no failure of it can break a session.

    Args:
        inner: the controller to protect.
        fallback: safe policy used when the inner controller misbehaves;
            defaults to buffer-based BBA (needs no throughput signal).
        solve_timeout: wall-clock budget per decision, seconds.
        max_watchdog_trips: after this many over-budget decisions the
            inner controller is retired for the rest of the session.
        max_consecutive_defers: successive ``None`` answers tolerated
            before the fallback decides instead.
        clock: monotonic time source used by the solve-time watchdog;
            defaults to :func:`time.monotonic`.  Injectable so watchdog
            trips are deterministically testable without real sleeps.
    """

    name = "resilient"

    def __init__(
        self,
        inner: AbrController,
        fallback: Optional[AbrController] = None,
        solve_timeout: float = 1.0,
        max_watchdog_trips: int = 5,
        max_consecutive_defers: int = 200,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if solve_timeout <= 0:
            raise ValueError("solve_timeout must be positive")
        if max_watchdog_trips < 1:
            raise ValueError("max_watchdog_trips must be at least 1")
        if max_consecutive_defers < 1:
            raise ValueError("max_consecutive_defers must be at least 1")
        super().__init__(predictor=None)
        self.inner = inner
        self.fallback = fallback or BbaController()
        self.solve_timeout = solve_timeout
        self.max_watchdog_trips = max_watchdog_trips
        self.max_consecutive_defers = max_consecutive_defers
        self.clock = clock or time.monotonic
        self.name = f"resilient({inner.name})"
        if inner.predictor is not None and not isinstance(
            inner.predictor, _SafePredictor
        ):
            inner.predictor = _SafePredictor(inner.predictor)
        # Share the (safe) predictor so run_session's oracle attachment
        # still reaches it through the wrapper.
        self.predictor = inner.predictor
        self._zero_counters()

    # ------------------------------------------------------------------
    def _zero_counters(self) -> None:
        self.fallback_decisions = 0
        self.caught_exceptions = 0
        self.sanitized_observations = 0
        self.watchdog_trips = 0
        self._defer_streak = 0
        self._inner_retired = False

    # The wrapped controller's predictor gets a ``__getattr__`` shim, but
    # the wrapper itself does not — surface the inner controller's plan
    # cache counters explicitly so ``simulate_session`` finds them here too.
    @property
    def plan_cache_hits(self) -> int:
        return int(getattr(self.inner, "plan_cache_hits", 0))

    @property
    def plan_cache_misses(self) -> int:
        return int(getattr(self.inner, "plan_cache_misses", 0))

    def reset(self) -> None:
        self._zero_counters()
        try:
            self.inner.reset()
        except Exception:
            self.caught_exceptions += 1
            self._inner_retired = True
        try:
            self.fallback.reset()
        except Exception:
            self.caught_exceptions += 1

    # ------------------------------------------------------------------
    def on_download(self, sample: ThroughputSample) -> None:
        clean = self._sanitize_sample(sample)
        if clean is None:
            self.sanitized_observations += 1
            return
        if clean is not sample:
            self.sanitized_observations += 1
        try:
            self.inner.on_download(clean)
        except Exception:
            self.caught_exceptions += 1
        try:
            self.fallback.on_download(clean)
        except Exception:
            self.caught_exceptions += 1

    def select_quality(self, obs: PlayerObservation) -> Optional[int]:
        obs = self._sanitize_observation(obs)
        if self._inner_retired:
            return self._fallback_decision(obs)

        started = self.clock()
        try:
            quality = self.inner.select_quality(obs)
        except Exception:
            self.caught_exceptions += 1
            return self._fallback_decision(obs)
        if self.clock() - started > self.solve_timeout:
            self.watchdog_trips += 1
            if self.watchdog_trips >= self.max_watchdog_trips:
                self._inner_retired = True
            return self._fallback_decision(obs)

        if quality is None:
            self._defer_streak += 1
            if self._defer_streak > self.max_consecutive_defers:
                return self._fallback_decision(obs)
            return None
        self._defer_streak = 0

        rung = self._validate_rung(quality, obs)
        if rung is None:
            return self._fallback_decision(obs)
        return rung

    # ------------------------------------------------------------------
    def _validate_rung(
        self, quality, obs: PlayerObservation
    ) -> Optional[int]:
        """Return a checked int rung, or ``None`` when it is unusable."""
        return validate_rung(quality, obs.ladder.levels)

    def _fallback_decision(self, obs: PlayerObservation) -> int:
        self.fallback_decisions += 1
        self._defer_streak = 0
        try:
            quality = self.fallback.select_quality(obs)
        except Exception:
            self.caught_exceptions += 1
            quality = 0
        rung = self._validate_rung(quality, obs) if quality is not None else None
        # The last line of defense must always produce a playable rung.
        return rung if rung is not None else 0

    # ------------------------------------------------------------------
    @staticmethod
    def _sanitize_sample(
        sample: ThroughputSample,
    ) -> Optional[ThroughputSample]:
        """Repair a corrupted download sample, or drop a hopeless one."""
        return sanitize_sample(sample)

    def _sanitize_observation(self, obs: PlayerObservation) -> PlayerObservation:
        """Clamp non-finite scalars and strip garbage history samples."""
        clean = sanitize_observation(obs)
        if clean is not obs:
            self.sanitized_observations += 1
        return clean
