"""Baseline ABR controllers evaluated against SODA (paper §6.1.2, §6.2.2)."""

from .base import AbrController, PlayerObservation
from .bba import BbaController
from .bola import BolaController, BolaParameters
from .dynamic import DynamicController
from .fugu import FuguController
from .hyb import HybController
from .mpc import MpcController, RobustMpcController
from .pid import PidController
from .rate import RateController, rate_rule_quality
from .resilient import (
    ResilientController,
    sanitize_observation,
    sanitize_sample,
    validate_rung,
)
from .rl import QTableController, encode_state, train_q_controller

__all__ = [
    "AbrController",
    "PlayerObservation",
    "BbaController",
    "PidController",
    "BolaController",
    "BolaParameters",
    "DynamicController",
    "FuguController",
    "HybController",
    "MpcController",
    "RobustMpcController",
    "RateController",
    "rate_rule_quality",
    "ResilientController",
    "sanitize_observation",
    "sanitize_sample",
    "validate_rung",
    "QTableController",
    "encode_state",
    "train_q_controller",
]
