"""HYB: the buffer-aware throughput heuristic from Oboe [24].

HYB selects the highest bitrate that is predicted to download without
draining the buffer: rung j is sustainable when

    size(j) / ω̂  ≤  δ · buffer_level

with a discount factor δ < 1 that absorbs prediction error.  HYB is simple
and widely deployed but ignores switching entirely, which is why the paper
reports it switching up to 215% more than SODA (§6.1.3).
"""

from __future__ import annotations

from typing import Optional

from ..prediction.base import ThroughputPredictor
from ..prediction.ema import EmaPredictor
from .base import AbrController, PlayerObservation
from .rate import rate_rule_quality

__all__ = ["HybController"]


class HybController(AbrController):
    """HYB heuristic: highest bitrate that avoids rebuffering.

    Args:
        predictor: throughput predictor (EMA by default).
        discount: δ — fraction of the current buffer the next download is
            allowed to consume.  Oboe uses values around 0.25–0.5; with the
            short live buffers used here 0.5 is a reasonable tuning.
    """

    name = "hyb"

    def __init__(
        self,
        predictor: Optional[ThroughputPredictor] = None,
        discount: float = 0.5,
    ) -> None:
        super().__init__(predictor or EmaPredictor())
        if not 0 < discount <= 1:
            raise ValueError("discount must be in (0, 1]")
        self.discount = discount

    def select_quality(self, obs: PlayerObservation) -> Optional[int]:
        throughput = self._predicted_throughput(obs)
        if obs.buffer_level <= 0 or not obs.playing:
            # Cold start / empty buffer: fall back to the plain rate rule.
            return rate_rule_quality(throughput, obs.ladder, self.discount + 0.25)
        best = 0
        for quality in range(obs.ladder.levels):
            size = obs.ladder.segment_size(quality, obs.segment_index)
            if size / throughput <= self.discount * obs.buffer_level:
                best = quality
        return best
