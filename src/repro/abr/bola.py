"""BOLA: buffer-based bitrate adaptation via Lyapunov optimization [36, 44].

BOLA maximises a per-download score ``(V·(u_m + gp) − Q) / S_m`` where
``u_m`` is the (log) utility of rung m, ``S_m`` its segment size, ``Q`` the
current buffer level, and ``V``/``gp`` control parameters derived from two
buffer thresholds: the level at which the lowest rung is picked and the
level at which the highest rung is reached.  This file follows the dash.js
``BolaRule`` parameterisation.

BOLA is purely buffer-based in steady state — throughput predictions never
enter its decisions — which is why Figure 11 shows it unaffected by
prediction noise.  Its weakness (Figure 2) is that the decision thresholds
compress into a 1–3 s band when the buffer cap is a live-streaming 20 s, so
tiny buffer fluctuations flip the chosen rung.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from .base import AbrController, PlayerObservation
from .rate import rate_rule_quality

__all__ = ["BolaController", "BolaParameters"]


@dataclass(frozen=True)
class BolaParameters:
    """Derived BOLA control parameters for one ladder + buffer setting.

    Attributes:
        vp: the Lyapunov trade-off parameter V (seconds).
        gp: the utility offset γp.
        utilities: per-rung log utilities, shifted so the lowest rung is 1.
        buffer_low: buffer level at/below which the lowest rung is chosen.
        buffer_target: buffer level around which the top rung is reached.
    """

    vp: float
    gp: float
    utilities: List[float]
    buffer_low: float
    buffer_target: float

    @staticmethod
    def derive(
        ladder, buffer_low: float, buffer_target: float
    ) -> "BolaParameters":
        """Solve for (V, gp) from the two buffer thresholds (dash.js rule)."""
        if buffer_low <= 0 or buffer_target <= buffer_low:
            raise ValueError("need 0 < buffer_low < buffer_target")
        sizes = [ladder.segment_size(q) for q in range(ladder.levels)]
        utilities = [math.log(s / sizes[0]) + 1.0 for s in sizes]
        top = utilities[-1]
        if ladder.levels == 1 or top <= 1.0:
            # Degenerate single-rung ladder: any positive parameters work.
            return BolaParameters(
                vp=buffer_low,
                gp=1.0,
                utilities=utilities,
                buffer_low=buffer_low,
                buffer_target=buffer_target,
            )
        gp = (top - 1.0) / (buffer_target / buffer_low - 1.0)
        vp = buffer_low / gp
        return BolaParameters(
            vp=vp,
            gp=gp,
            utilities=utilities,
            buffer_low=buffer_low,
            buffer_target=buffer_target,
        )

    def score(self, quality: int, buffer_level: float, ladder, segment_index: int = 0) -> float:
        """BOLA objective for one rung at one buffer level."""
        size = ladder.segment_size(quality, segment_index)
        return (
            self.vp * (self.utilities[quality] + self.gp) - buffer_level
        ) / size


class BolaController(AbrController):
    """BOLA (buffer-based, Lyapunov-derived).

    Args:
        buffer_low: threshold below which the lowest rung is chosen; when
            None, ``min(10 s, 0.45 × max_buffer)`` — dash.js's 10 s minimum
            adapted to small live buffers.
        buffer_target: level where the top rung is reached; when None,
            ``0.75 × max_buffer``.
        allow_deferral: return ``None`` (no download) when every score is
            negative, i.e. the buffer is above the top decision boundary.
    """

    name = "bola"

    def __init__(
        self,
        buffer_low: Optional[float] = None,
        buffer_target: Optional[float] = None,
        allow_deferral: bool = True,
    ) -> None:
        super().__init__(predictor=None)
        self._buffer_low = buffer_low
        self._buffer_target = buffer_target
        self.allow_deferral = allow_deferral
        self._params: Optional[BolaParameters] = None
        self._params_key = None

    # ------------------------------------------------------------------
    def parameters_for(self, ladder, max_buffer: float) -> BolaParameters:
        """Derived (V, gp) for a ladder + buffer cap, cached per session."""
        key = (id(ladder), max_buffer)
        if self._params is None or self._params_key != key:
            low = self._buffer_low
            if low is None:
                low = min(10.0, 0.45 * max_buffer)
            low = max(low, ladder.segment_duration)
            target = self._buffer_target
            if target is None:
                target = 0.75 * max_buffer
            if target <= low:
                target = low * 1.5
            self._params = BolaParameters.derive(ladder, low, target)
            self._params_key = key
        return self._params

    def reset(self) -> None:
        super().reset()
        self._params = None
        self._params_key = None

    # ------------------------------------------------------------------
    def select_quality(self, obs: PlayerObservation) -> Optional[int]:
        params = self.parameters_for(obs.ladder, obs.max_buffer)
        if not obs.playing and obs.previous_quality is None:
            # Startup: no buffer signal yet; begin from the measured
            # throughput if any, else the lowest rung.
            throughput = obs.last_throughput
            if throughput is None:
                return 0
            return rate_rule_quality(throughput, obs.ladder)

        best_quality = 0
        best_score = -math.inf
        for quality in range(obs.ladder.levels):
            s = params.score(
                quality, obs.buffer_level, obs.ladder, obs.segment_index
            )
            if s > best_score:
                best_score = s
                best_quality = quality
        if best_score < 0 and self.allow_deferral:
            return None
        return best_quality

    def decision_at_buffer(
        self, buffer_level: float, ladder, max_buffer: float
    ) -> Optional[int]:
        """Stateless decision for a buffer level (Figure 2 boundary sweep)."""
        params = self.parameters_for(ladder, max_buffer)
        scores = [
            params.score(q, buffer_level, ladder) for q in range(ladder.levels)
        ]
        best = max(range(ladder.levels), key=lambda q: scores[q])
        if scores[best] < 0 and self.allow_deferral:
            return None
        return best
