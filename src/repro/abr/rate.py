"""Simple throughput-based bitrate rule.

Picks the highest rung whose bitrate stays below a safety fraction of the
predicted throughput.  This is the classic "rate rule": it is both a weak
baseline on its own and a building block of Dynamic's throughput mode and of
several startup heuristics.
"""

from __future__ import annotations

from typing import Optional

from ..prediction.base import ThroughputPredictor
from ..prediction.ema import EmaPredictor
from .base import AbrController, PlayerObservation

__all__ = ["RateController", "rate_rule_quality"]


def rate_rule_quality(
    throughput: float, ladder, safety_factor: float = 0.9
) -> int:
    """Highest rung with bitrate ≤ safety_factor × throughput (min rung 0)."""
    if safety_factor <= 0:
        raise ValueError("safety factor must be positive")
    return ladder.quality_for_bitrate(safety_factor * throughput)


class RateController(AbrController):
    """Throughput rule: follow the predicted bandwidth with a safety margin.

    Args:
        predictor: throughput predictor (EMA by default, as in dash.js).
        safety_factor: fraction of the prediction considered sustainable.
    """

    name = "rate"

    def __init__(
        self,
        predictor: Optional[ThroughputPredictor] = None,
        safety_factor: float = 0.9,
    ) -> None:
        super().__init__(predictor or EmaPredictor())
        if safety_factor <= 0:
            raise ValueError("safety factor must be positive")
        self.safety_factor = safety_factor

    def select_quality(self, obs: PlayerObservation) -> Optional[int]:
        throughput = self._predicted_throughput(obs)
        return rate_rule_quality(throughput, obs.ladder, self.safety_factor)
