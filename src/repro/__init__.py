"""repro — a full reproduction of SODA (SIGCOMM 2024).

SODA: An Adaptive Bitrate Controller for Consistent High-Quality Video
Streaming (Chen et al., ACM SIGCOMM 2024).

Quick start::

    from repro import SodaController, live_profile, puffer_like, run_session

    profile = live_profile(session_seconds=120)
    trace = puffer_like().generate(duration=120, seed=1)
    result = run_session(SodaController(), trace, profile.ladder, profile.player)

Subpackages:
    core:       SODA controller, solvers, offline optimal, theory bounds
    abr:        baseline controllers (HYB, BOLA, Dynamic, MPC, Fugu, RL)
                and the ResilientController graceful-degradation wrapper
    faults:     seeded download-fault injection (FaultPlan)
    sim:        player simulator, video models, network traces
    prediction: throughput predictors
    traces:     synthetic dataset generators and real-format parsers
    qoe:        the paper's QoE metrics and aggregation
    analysis:   experiment harness, tables, engagement models
    runner:     supervised experiment executor (crash containment,
                journaling, resume, invariant auditing)
    service:    deadline-aware decision service (degradation ladder,
                circuit breaker, admission control, chaos-soak harness)
"""

from .abr import (
    AbrController,
    BolaController,
    DynamicController,
    FuguController,
    HybController,
    MpcController,
    PlayerObservation,
    QTableController,
    RateController,
    ResilientController,
    RobustMpcController,
    train_q_controller,
)
from .faults import FaultDecision, FaultKind, FaultPlan, FaultSpec
from .core import (
    SodaConfig,
    SodaController,
    offline_optimal,
    rollout_time_based,
    solve_brute_force,
    solve_monotonic,
)
from .prediction import (
    EmaPredictor,
    HarmonicMeanPredictor,
    MovingAveragePredictor,
    NoisyOraclePredictor,
    OraclePredictor,
    SlidingWindowPredictor,
    StochasticPredictor,
    ThroughputPredictor,
    ThroughputSample,
)
from .qoe import QoeMetrics, QoeSummary, qoe_from_session, summarize
from .runner import (
    ConfigMismatchError,
    Journal,
    JournalError,
    RunManifest,
    SessionKey,
    SessionRecord,
    audit_session,
    config_hash,
)
from .service import (
    CircuitBreaker,
    DecisionService,
    FleetHealth,
    HealthSnapshot,
    ServiceStats,
    ShardedDecisionService,
    SoakConfig,
    run_soak,
)
from .sim import (
    BitrateLadder,
    LivelockError,
    PlayerConfig,
    SessionResult,
    SsimModel,
    ThroughputTrace,
    live_profile,
    on_demand_profile,
    production_profile,
    prototype_profile,
    run_dataset,
    run_session,
    simulate_session,
)
from .traces import (
    build_synthetic_datasets,
    fiveg_like,
    fourg_like,
    prepare_sessions,
    puffer_like,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "SodaController",
    "SodaConfig",
    "solve_monotonic",
    "solve_brute_force",
    "offline_optimal",
    "rollout_time_based",
    # abr
    "AbrController",
    "PlayerObservation",
    "BolaController",
    "DynamicController",
    "FuguController",
    "HybController",
    "MpcController",
    "RobustMpcController",
    "RateController",
    "ResilientController",
    "QTableController",
    "train_q_controller",
    # faults
    "FaultKind",
    "FaultDecision",
    "FaultSpec",
    "FaultPlan",
    # prediction
    "ThroughputPredictor",
    "ThroughputSample",
    "EmaPredictor",
    "MovingAveragePredictor",
    "SlidingWindowPredictor",
    "HarmonicMeanPredictor",
    "OraclePredictor",
    "NoisyOraclePredictor",
    "StochasticPredictor",
    # sim
    "ThroughputTrace",
    "BitrateLadder",
    "SsimModel",
    "LivelockError",
    "PlayerConfig",
    "SessionResult",
    "simulate_session",
    "run_session",
    "run_dataset",
    "live_profile",
    "on_demand_profile",
    "prototype_profile",
    "production_profile",
    # traces
    "puffer_like",
    "fiveg_like",
    "fourg_like",
    "build_synthetic_datasets",
    "prepare_sessions",
    # qoe
    "QoeMetrics",
    "QoeSummary",
    "qoe_from_session",
    "summarize",
    # runner
    "Journal",
    "JournalError",
    "ConfigMismatchError",
    "RunManifest",
    "SessionKey",
    "SessionRecord",
    "audit_session",
    "config_hash",
    # service
    "CircuitBreaker",
    "DecisionService",
    "FleetHealth",
    "HealthSnapshot",
    "ServiceStats",
    "ShardedDecisionService",
    "SoakConfig",
    "run_soak",
]
