"""Throughput datasets: synthetic generators and real-format parsers."""

from .datasets import build_synthetic_datasets, prepare_sessions
from .loader import load_bandwidth_csv, load_irish_csv, load_mahimahi
from .scenarios import (
    all_scenarios,
    oscillation,
    outage,
    ramp,
    sawtooth,
    spike,
    step_down,
    step_up,
)
from .synthetic import (
    DATASET_FACTORIES,
    MarkovLognormalGenerator,
    Regime,
    fiveg_like,
    fourg_like,
    puffer_like,
)

__all__ = [
    "build_synthetic_datasets",
    "prepare_sessions",
    "load_bandwidth_csv",
    "load_irish_csv",
    "load_mahimahi",
    "all_scenarios",
    "step_down",
    "step_up",
    "spike",
    "outage",
    "ramp",
    "oscillation",
    "sawtooth",
    "DATASET_FACTORIES",
    "MarkovLognormalGenerator",
    "Regime",
    "puffer_like",
    "fiveg_like",
    "fourg_like",
]
