"""Parsers for the public trace formats the paper's datasets ship in.

Real data is not bundled with this repository (DESIGN.md substitution #1),
but these loaders let the paper's actual datasets drop in unchanged:

* **Mahimahi** packet-delivery logs (one millisecond timestamp per line,
  each line = one 1500-byte MTU delivered) — the format of the FCC/Norway
  traces used by MPC and Pensieve and convertible from Puffer dumps;
* **bandwidth CSV** — ``timestamp,bandwidth`` pairs, the shape of parsed
  Puffer throughput logs;
* **Irish 4G/5G CSV** [27, 41] — per-second rows with a ``DL_bitrate``
  column in kbit/s.
"""

from __future__ import annotations

import csv
import io
import math
from pathlib import Path
from typing import List, Sequence, TextIO, Union

from ..sim.network import ThroughputTrace

__all__ = ["load_mahimahi", "load_bandwidth_csv", "load_irish_csv"]

#: bits in one Mahimahi MTU-sized delivery opportunity
_MTU_BITS = 1500 * 8

Source = Union[str, Path, TextIO]


def _open(source: Source):
    """Return (file object, should_close) for a path or open file."""
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8"), True
    return source, False


def load_mahimahi(
    source: Source, bin_seconds: float = 1.0, name: str = ""
) -> ThroughputTrace:
    """Parse a Mahimahi packet-delivery trace into a throughput trace.

    Args:
        source: path or file of millisecond timestamps, one per line; each
            line grants one 1500-byte delivery.
        bin_seconds: width of the throughput bins.
        name: label for the resulting trace (defaults to the file name).

    Raises:
        ValueError: on an empty file, an unparseable line (named by line
            number), or non-monotonic timestamps.
    """
    if bin_seconds <= 0:
        raise ValueError("bin width must be positive")
    f, should_close = _open(source)
    try:
        timestamps_ms: List[int] = []
        for lineno, line in enumerate(f, start=1):
            text = line.strip()
            if not text:
                continue
            try:
                timestamps_ms.append(int(text))
            except ValueError:
                raise ValueError(
                    f"mahimahi trace line {lineno}: expected a millisecond "
                    f"timestamp, got {text!r}"
                )
    finally:
        if should_close:
            f.close()
    if not timestamps_ms:
        raise ValueError("mahimahi trace is empty")
    if any(b < a for a, b in zip(timestamps_ms, timestamps_ms[1:])):
        raise ValueError("mahimahi timestamps must be non-decreasing")

    end_ms = timestamps_ms[-1]
    n_bins = max(int(end_ms / 1000.0 / bin_seconds) + 1, 1)
    bits = [0.0] * n_bins
    for ts in timestamps_ms:
        idx = min(int(ts / 1000.0 / bin_seconds), n_bins - 1)
        bits[idx] += _MTU_BITS
    bandwidths = [b / bin_seconds / 1e6 for b in bits]  # Mb/s
    label = name or (str(source) if isinstance(source, (str, Path)) else "")
    return ThroughputTrace([bin_seconds] * n_bins, bandwidths, name=label)


def load_bandwidth_csv(
    source: Source,
    time_column: str = "time",
    bandwidth_column: str = "bandwidth",
    bandwidth_scale: float = 1.0,
    name: str = "",
) -> ThroughputTrace:
    """Parse a ``timestamp,bandwidth`` CSV into a throughput trace.

    Args:
        source: path or file with a header row.
        time_column: column of timestamps in seconds (monotonic).
        bandwidth_column: column of bandwidth values.
        bandwidth_scale: multiplier taking the column's unit to Mb/s.
        name: trace label.

    Raises:
        ValueError: on missing columns, fewer than two rows, or a row with
            an unparseable, NaN, infinite, or negative value — named by
            line number, so garbage never propagates into a
            :class:`ThroughputTrace`.
    """
    f, should_close = _open(source)
    try:
        reader = csv.DictReader(f)
        rows = list(reader)
    finally:
        if should_close:
            f.close()
    if len(rows) < 2:
        raise ValueError("bandwidth CSV needs at least two rows")
    for col in (time_column, bandwidth_column):
        if col not in rows[0]:
            raise ValueError(f"CSV lacks column {col!r}")

    times: List[float] = []
    bws: List[float] = []
    # Row 1 is the header, so data row i is file line i + 2.
    for i, row in enumerate(rows):
        lineno = i + 2
        try:
            tval = float(row[time_column])
            bval = float(row[bandwidth_column])
        except (TypeError, ValueError):
            raise ValueError(
                f"bandwidth CSV line {lineno}: unparseable row "
                f"({row[time_column]!r}, {row[bandwidth_column]!r})"
            )
        if not math.isfinite(tval) or not math.isfinite(bval):
            raise ValueError(
                f"bandwidth CSV line {lineno}: non-finite value "
                f"({row[time_column]!r}, {row[bandwidth_column]!r})"
            )
        if bval < 0:
            raise ValueError(
                f"bandwidth CSV line {lineno}: negative bandwidth {bval!r}"
            )
        times.append(tval)
        bws.append(bval * bandwidth_scale)

    durations: List[float] = []
    bandwidths: List[float] = []
    for i in range(len(rows) - 1):
        dt = times[i + 1] - times[i]
        if dt <= 0:
            raise ValueError(
                f"bandwidth CSV line {i + 3}: timestamps must be strictly "
                f"increasing"
            )
        durations.append(dt)
        bandwidths.append(bws[i])
    label = name or (str(source) if isinstance(source, (str, Path)) else "")
    return ThroughputTrace(durations, bandwidths, name=label)


def load_irish_csv(source: Source, name: str = "") -> ThroughputTrace:
    """Parse an Irish 4G/5G dataset CSV [27, 41] into a throughput trace.

    The datasets log one row per second with downlink throughput in the
    ``DL_bitrate`` column (kbit/s).  Rows with missing or negative values
    are treated as zero throughput (radio gaps).

    Raises:
        ValueError: when the ``DL_bitrate`` column is absent or no rows
            parse.
    """
    f, should_close = _open(source)
    try:
        reader = csv.DictReader(f)
        if reader.fieldnames is None or "DL_bitrate" not in reader.fieldnames:
            raise ValueError("Irish dataset CSV lacks a DL_bitrate column")
        bandwidths: List[float] = []
        for row in reader:
            raw = (row.get("DL_bitrate") or "").strip()
            try:
                kbps = float(raw)
            except ValueError:
                kbps = 0.0
            if not math.isfinite(kbps):
                # NaN/inf sentinel rows are radio gaps, like missing cells.
                kbps = 0.0
            bandwidths.append(max(kbps, 0.0) / 1000.0)  # kb/s -> Mb/s
    finally:
        if should_close:
            f.close()
    if not bandwidths:
        raise ValueError("Irish dataset CSV has no data rows")
    label = name or (str(source) if isinstance(source, (str, Path)) else "")
    return ThroughputTrace([1.0] * len(bandwidths), bandwidths, name=label)
