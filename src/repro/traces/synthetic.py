"""Synthetic throughput-trace generators matched to the paper's datasets.

The paper's simulations (§6.1.1) draw on three public datasets whose key
statistics are reported in Figure 9:

* **Puffer** — mean 57.1 Mb/s, mean relative standard deviation 47.2%;
* **Irish 5G** — mean 31.3 Mb/s, RSD 133% (bursty, with outages);
* **Irish 4G** — mean 13.0 Mb/s, RSD 80.6% (mobility dips).

We model each as a Markov-modulated log-normal process: a regime chain
(good / degraded / outage) with exponential dwell times multiplies a
mean-one AR(1) log-normal fluctuation.  Given the regime structure, the
generator *solves* for the base rate and log-volatility that make the
stationary mean and RSD hit the targets exactly, so the synthetic datasets
match Figure 9 by construction (up to sampling noise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..sim.network import ThroughputTrace

__all__ = [
    "Regime",
    "MarkovLognormalGenerator",
    "puffer_like",
    "fiveg_like",
    "fourg_like",
    "DATASET_FACTORIES",
]


@dataclass(frozen=True)
class Regime:
    """One network regime.

    Attributes:
        multiplier: throughput multiplier relative to the base rate.
        mean_dwell: mean sojourn time in this regime, seconds.
    """

    multiplier: float
    mean_dwell: float

    def __post_init__(self) -> None:
        if self.multiplier <= 0:
            raise ValueError("regime multiplier must be positive")
        if self.mean_dwell <= 0:
            raise ValueError("regime dwell must be positive")


class MarkovLognormalGenerator:
    """Markov-modulated AR(1) log-normal throughput generator.

    Args:
        target_mean: stationary mean throughput, Mb/s.
        target_rsd: stationary relative standard deviation.
        regimes: regime structure; one regime means a plain log-normal.
        ar_coefficient: AR(1) coefficient of the log fluctuation at the
            step granularity (temporal smoothness).
        step: sample granularity in seconds.
        floor: minimum emitted throughput, Mb/s (keeps downloads finite).
        name: dataset label stamped on generated traces.

    Raises:
        ValueError: when the regime structure alone already exceeds the
            target RSD (no non-negative volatility can match it).
    """

    def __init__(
        self,
        target_mean: float,
        target_rsd: float,
        regimes: Optional[Sequence[Regime]] = None,
        ar_coefficient: float = 0.95,
        step: float = 1.0,
        floor: float = 0.05,
        name: str = "synthetic",
    ) -> None:
        if target_mean <= 0:
            raise ValueError("target mean must be positive")
        if target_rsd < 0:
            raise ValueError("target RSD must be non-negative")
        if not 0 <= ar_coefficient < 1:
            raise ValueError("AR coefficient must be in [0, 1)")
        if step <= 0:
            raise ValueError("step must be positive")
        self.target_mean = target_mean
        self.target_rsd = target_rsd
        self.regimes: List[Regime] = list(regimes or [Regime(1.0, 1e9)])
        self.ar_coefficient = ar_coefficient
        self.step = step
        self.floor = floor
        self.name = name

        # Stationary occupancy of a uniform-jump chain with exponential
        # dwells is proportional to the dwell times.
        dwells = np.array([r.mean_dwell for r in self.regimes])
        self._occupancy = dwells / dwells.sum()
        mults = np.array([r.multiplier for r in self.regimes])
        m1 = float(np.dot(self._occupancy, mults))
        m2 = float(np.dot(self._occupancy, mults**2))
        #: base rate solving E[X] = base * Σ π m = target_mean
        self.base_rate = target_mean / m1
        # Solve e^{σ²} = (1 + RSD²) (Σπm)² / (Σπm²) for the log volatility.
        factor = (1.0 + target_rsd**2) * m1 * m1 / m2
        if factor < 1.0 - 1e-9:
            raise ValueError(
                "regime structure alone exceeds the target RSD; "
                "reduce multiplier spread or dwells"
            )
        self.log_sigma = math.sqrt(max(math.log(max(factor, 1.0)), 0.0))

    # ------------------------------------------------------------------
    def generate(self, duration: float, seed: int = 0) -> ThroughputTrace:
        """One trace of ``duration`` seconds (rounded up to whole steps)."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        rng = np.random.default_rng(seed)
        n = max(int(math.ceil(duration / self.step)), 1)

        # Regime path.
        k = len(self.regimes)
        regime = int(rng.choice(k, p=self._occupancy))
        multipliers = np.empty(n)
        stay_prob = [math.exp(-self.step / r.mean_dwell) for r in self.regimes]
        for i in range(n):
            multipliers[i] = self.regimes[regime].multiplier
            if k > 1 and rng.random() > stay_prob[regime]:
                choices = [j for j in range(k) if j != regime]
                regime = int(rng.choice(choices))

        # Mean-one AR(1) log-normal fluctuation.
        sigma = self.log_sigma
        phi = self.ar_coefficient
        z = np.empty(n)
        z[0] = rng.normal(0.0, sigma)
        innovation_std = sigma * math.sqrt(1.0 - phi * phi)
        for i in range(1, n):
            z[i] = phi * z[i - 1] + rng.normal(0.0, innovation_std)
        fluctuation = np.exp(z - 0.5 * sigma * sigma)

        bandwidth = np.maximum(
            self.base_rate * multipliers * fluctuation, self.floor
        )
        return ThroughputTrace(
            [self.step] * n, bandwidth, name=f"{self.name}-{seed}"
        )

    def dataset(
        self, n_sessions: int, duration: float = 600.0, seed: int = 0
    ) -> List[ThroughputTrace]:
        """A list of independent session traces (paper: 10-minute sessions)."""
        if n_sessions < 1:
            raise ValueError("need at least one session")
        return [
            self.generate(duration, seed=seed * 1_000_003 + i)
            for i in range(n_sessions)
        ]


# ----------------------------------------------------------------------
# Calibrated factories for the paper's three datasets (Figure 9).
# ----------------------------------------------------------------------
def puffer_like() -> MarkovLognormalGenerator:
    """Puffer-like residential broadband: high mean, moderate volatility."""
    return MarkovLognormalGenerator(
        target_mean=57.1,
        target_rsd=0.472,
        regimes=[Regime(1.0, 1e9)],
        ar_coefficient=0.96,
        name="puffer",
    )


def fiveg_like() -> MarkovLognormalGenerator:
    """Irish-5G-like mobile link: bursty, with near-outage episodes."""
    return MarkovLognormalGenerator(
        target_mean=31.3,
        target_rsd=1.33,
        regimes=[
            Regime(1.6, 30.0),
            Regime(0.5, 20.0),
            Regime(0.08, 12.0),
        ],
        ar_coefficient=0.9,
        name="5g",
    )


def fourg_like() -> MarkovLognormalGenerator:
    """Irish-4G-like mobile link: lower mean, mobility dips."""
    return MarkovLognormalGenerator(
        target_mean=13.0,
        target_rsd=0.806,
        regimes=[
            Regime(1.4, 25.0),
            Regime(0.5, 15.0),
            Regime(0.12, 10.0),
        ],
        ar_coefficient=0.92,
        name="4g",
    )


#: name → factory, for harness code that sweeps the paper's datasets
DATASET_FACTORIES = {
    "puffer": puffer_like,
    "5g": fiveg_like,
    "4g": fourg_like,
}
