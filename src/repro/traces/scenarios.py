"""Canned deterministic trace scenarios for controller studies.

Unit-style network shapes — steps, spikes, outages, ramps, oscillations —
that isolate one adaptation challenge each.  They complement the stochastic
generators in :mod:`repro.traces.synthetic`: when a controller misbehaves
on a synthetic dataset, replaying these shapes usually pinpoints why.
"""

from __future__ import annotations

import math
from typing import List

from ..sim.network import ThroughputTrace

__all__ = [
    "step_down",
    "step_up",
    "spike",
    "outage",
    "ramp",
    "oscillation",
    "sawtooth",
    "all_scenarios",
]


def step_down(
    high: float = 12.0,
    low: float = 3.0,
    at: float = 120.0,
    duration: float = 300.0,
) -> ThroughputTrace:
    """Healthy network that permanently drops at ``at`` seconds."""
    if not 0 < at < duration:
        raise ValueError("step time must fall inside the trace")
    return ThroughputTrace(
        [at, duration - at], [high, low], name="step-down"
    )


def step_up(
    low: float = 3.0,
    high: float = 12.0,
    at: float = 120.0,
    duration: float = 300.0,
) -> ThroughputTrace:
    """Congested network that recovers at ``at`` seconds."""
    if not 0 < at < duration:
        raise ValueError("step time must fall inside the trace")
    return ThroughputTrace([at, duration - at], [low, high], name="step-up")


def spike(
    base: float = 6.0,
    peak: float = 40.0,
    at: float = 120.0,
    width: float = 10.0,
    duration: float = 300.0,
) -> ThroughputTrace:
    """A short throughput burst that a smooth controller should ignore."""
    if not 0 < at < at + width < duration:
        raise ValueError("spike must fall inside the trace")
    return ThroughputTrace(
        [at, width, duration - at - width],
        [base, peak, base],
        name="spike",
    )


def outage(
    base: float = 8.0,
    floor: float = 0.2,
    at: float = 120.0,
    width: float = 15.0,
    duration: float = 300.0,
) -> ThroughputTrace:
    """A near-total outage: the rebuffering stress test."""
    if not 0 < at < at + width < duration:
        raise ValueError("outage must fall inside the trace")
    return ThroughputTrace(
        [at, width, duration - at - width],
        [base, floor, base],
        name="outage",
    )


def ramp(
    start: float = 2.0,
    end: float = 20.0,
    duration: float = 300.0,
    steps: int = 60,
) -> ThroughputTrace:
    """A slow linear climb (or descent, if end < start)."""
    if steps < 2:
        raise ValueError("need at least two steps")
    dt = duration / steps
    bandwidths = [
        start + (end - start) * i / (steps - 1) for i in range(steps)
    ]
    return ThroughputTrace([dt] * steps, bandwidths, name="ramp")


def oscillation(
    low: float = 4.0,
    high: float = 10.0,
    period: float = 40.0,
    duration: float = 320.0,
) -> ThroughputTrace:
    """A square wave straddling a rung boundary: the switching stress test."""
    if period <= 0 or duration < period:
        raise ValueError("need at least one full period")
    half = period / 2.0
    n = int(duration // half)
    bandwidths = [low if i % 2 == 0 else high for i in range(n)]
    return ThroughputTrace([half] * n, bandwidths, name="oscillation")


def sawtooth(
    low: float = 2.0,
    high: float = 16.0,
    period: float = 60.0,
    duration: float = 300.0,
    steps_per_period: int = 12,
) -> ThroughputTrace:
    """Repeated ramps up with sharp drops — TCP-sawtooth-like."""
    if steps_per_period < 2:
        raise ValueError("need at least two steps per period")
    dt = period / steps_per_period
    n = max(int(duration // dt), 1)
    bandwidths: List[float] = []
    for i in range(n):
        phase = (i % steps_per_period) / (steps_per_period - 1)
        bandwidths.append(low + (high - low) * phase)
    return ThroughputTrace([dt] * n, bandwidths, name="sawtooth")


def all_scenarios() -> List[ThroughputTrace]:
    """One instance of every scenario at its defaults."""
    return [
        step_down(),
        step_up(),
        spike(),
        outage(),
        ramp(),
        oscillation(),
        sawtooth(),
    ]
