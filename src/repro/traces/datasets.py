"""Dataset preparation: the session filtering/splitting rule of §6.1.1.

The paper filters out sessions shorter than 10 minutes and divides longer
sessions into consecutive 10-minute chunks.  These helpers apply that rule
to any collection of traces (real or synthetic) and build the three
ready-to-use synthetic datasets.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..sim.network import ThroughputTrace
from .synthetic import DATASET_FACTORIES

__all__ = ["prepare_sessions", "build_synthetic_datasets"]


def prepare_sessions(
    traces: Iterable[ThroughputTrace],
    session_seconds: float = 600.0,
) -> List[ThroughputTrace]:
    """Filter and split traces into fixed-length sessions (§6.1.1).

    Traces shorter than ``session_seconds`` are dropped; longer traces are
    cut into consecutive ``session_seconds`` chunks (the tail shorter than a
    full session is discarded).
    """
    if session_seconds <= 0:
        raise ValueError("session length must be positive")
    sessions: List[ThroughputTrace] = []
    for trace in traces:
        if trace.duration < session_seconds:
            continue
        sessions.extend(trace.split(session_seconds))
    return sessions


def build_synthetic_datasets(
    sessions_per_dataset: int,
    session_seconds: float = 600.0,
    seed: int = 0,
) -> Dict[str, List[ThroughputTrace]]:
    """The three synthetic stand-ins for the paper's datasets (Figure 9).

    Returns:
        ``{"puffer": [...], "5g": [...], "4g": [...]}`` with
        ``sessions_per_dataset`` traces each.
    """
    if sessions_per_dataset < 1:
        raise ValueError("need at least one session per dataset")
    datasets: Dict[str, List[ThroughputTrace]] = {}
    for offset, (name, factory) in enumerate(DATASET_FACTORIES.items()):
        generator = factory()
        datasets[name] = generator.dataset(
            sessions_per_dataset,
            duration=session_seconds,
            seed=seed + 17 * offset,
        )
    return datasets
